//! The `pmx serve` front-end, in either of two shapes over the same
//! [`Registry`]:
//!
//! * **Reactor** (default): one `poll(2)` event-loop thread plus a fixed
//!   worker pool ([`pm_reactor`], wired up in `crate::reactor`). Total
//!   threads are fixed at bind time no matter how many connections are
//!   live — the shape that holds a many-thousand mostly-idle cohort.
//! * **Threaded**: the original accept loop with a reader + writer
//!   thread per connection — simpler to reason about, still the
//!   reference semantics, and kept so the test suites can run the same
//!   protocol contract against both shapes.
//!
//! Both enforce the same admission caps and typed error-code semantics;
//! [`Backend`] is the only knob that changes.

use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

use crate::conn::serve_connection;
use crate::protocol::{encode_response, ErrorCode, Response};
use crate::reactor::PmxService;
use crate::registry::Registry;

/// Worker threads the reactor backend runs by default (total threads =
/// workers + 1 event loop).
pub const DEFAULT_WORKERS: usize = 4;

/// Which serving machinery [`Server::bind_with`] starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Readiness loop + fixed worker pool (`workers + 1` threads total).
    Reactor {
        /// Worker threads decoding/dispatching frames (min 1).
        workers: usize,
    },
    /// One reader + one writer thread per live connection.
    Threaded,
}

impl Default for Backend {
    fn default() -> Self {
        Self::Reactor { workers: DEFAULT_WORKERS }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Reactor { workers } => write!(f, "reactor({workers} workers)"),
            Self::Threaded => write!(f, "threaded"),
        }
    }
}

/// A running server: the bound address plus the handles a clean shutdown
/// needs. Dropping the handle shuts the server down.
pub struct Server {
    addr: SocketAddr,
    registry: Arc<Registry>,
    inner: Inner,
}

enum Inner {
    Reactor(pm_reactor::Reactor),
    Threaded(Threaded),
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// accepting connections against `registry` on the default backend.
    pub fn bind(addr: impl ToSocketAddrs, registry: Arc<Registry>) -> std::io::Result<Self> {
        Self::bind_with(addr, registry, Backend::default())
    }

    /// Binds with an explicit [`Backend`].
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        registry: Arc<Registry>,
        backend: Backend,
    ) -> std::io::Result<Self> {
        match backend {
            Backend::Reactor { workers } => {
                let service = PmxService::new(Arc::clone(&registry));
                let config = service.config(workers.max(1));
                let reactor = pm_reactor::Reactor::bind(addr, Arc::new(service), config)?;
                Ok(Self { addr: reactor.addr(), registry, inner: Inner::Reactor(reactor) })
            }
            Backend::Threaded => {
                let threaded = Threaded::bind(addr, Arc::clone(&registry))?;
                Ok(Self { addr: threaded.addr, registry, inner: Inner::Threaded(threaded) })
            }
        }
    }

    /// The bound address (with the resolved port when bound to port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry this server dispatches into.
    #[must_use]
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Live connections right now.
    #[must_use]
    pub fn connection_count(&self) -> usize {
        match &self.inner {
            Inner::Reactor(r) => r.connection_count(),
            Inner::Threaded(t) => t.shared.connections.load(Ordering::Acquire),
        }
    }

    /// The fixed I/O + dispatch thread count, when the backend has one:
    /// `Some(workers + 1)` for the reactor (independent of connection
    /// count), `None` for the threaded backend (2 threads per live
    /// connection, nothing fixed to report).
    #[must_use]
    pub fn io_threads(&self) -> Option<usize> {
        match &self.inner {
            Inner::Reactor(r) => Some(r.thread_count()),
            Inner::Threaded(_) => None,
        }
    }

    /// Stops accepting and closes every connection — the reactor backend
    /// first sends each live connection a final
    /// [`ErrorCode::ShuttingDown`] frame (graceful drain), the threaded
    /// backend unblocks and joins its per-connection threads. Idempotent.
    pub fn shutdown(&mut self) {
        match &mut self.inner {
            Inner::Reactor(r) => r.shutdown(),
            Inner::Threaded(t) => t.shutdown(),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// The server handle crosses threads in tests and embedders; keep the
// bound a compile-time fact (see the matching assert in `registry`).
const _: () = {
    const fn send_sync<T: Send + Sync>() {}
    send_sync::<Server>();
};

/// The original threads-per-connection backend.
struct Threaded {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    shared: Arc<Shared>,
}

/// State the accept loop and the shutdown path share.
struct Shared {
    /// Live connection count — the admission gate.
    connections: AtomicUsize,
    /// Next connection id; keys `streams` so guards remove exactly their
    /// own entry (peer addresses are useless as keys: `getpeername` fails
    /// on a reset connection).
    next_conn_id: AtomicU64,
    /// Read-half clones of every live connection, keyed by connection id,
    /// so shutdown can unblock readers parked in `read_exact` without
    /// per-read timeouts.
    streams: Mutex<Vec<(u64, TcpStream)>>,
    /// Joinable reader threads (each joins its own writer before exiting).
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// Decrements the live-connection count and drops the tracked stream clone
/// even if the connection thread unwinds.
struct ConnGuard {
    shared: Arc<Shared>,
    id: u64,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.shared.connections.fetch_sub(1, Ordering::AcqRel);
        if let Ok(mut streams) = self.shared.streams.lock() {
            streams.retain(|&(id, _)| id != self.id);
        }
    }
}

impl Threaded {
    fn bind(addr: impl ToSocketAddrs, registry: Arc<Registry>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared {
            connections: AtomicUsize::new(0),
            next_conn_id: AtomicU64::new(0),
            streams: Mutex::new(Vec::new()),
            workers: Mutex::new(Vec::new()),
        });
        let accept = {
            let registry = Arc::clone(&registry);
            let shutdown = Arc::clone(&shutdown);
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("pmx-serve-accept".into())
                .spawn(move || accept_loop(&listener, &registry, &shutdown, &shared))?
        };
        Ok(Self { addr, shutdown, accept: Some(accept), shared })
    }

    /// Stops accepting, unblocks and joins every connection thread, then
    /// joins the accept loop. Idempotent.
    fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the accept loop out of `accept()` with a throwaway connect.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Unblock readers parked in read_exact.
        if let Ok(streams) = self.shared.streams.lock() {
            for (_, s) in streams.iter() {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
        let workers = {
            let mut w = crate::sync::lock(&self.shared.workers);
            std::mem::take(&mut *w)
        };
        for handle in workers {
            let _ = handle.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    registry: &Arc<Registry>,
    shutdown: &Arc<AtomicBool>,
    shared: &Arc<Shared>,
) {
    let max_connections = registry.limits().max_connections;
    for stream in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = stream else { continue };

        // Admission gate: over the cap, answer with the typed reject and
        // close — never park the client in the backlog.
        let live = shared.connections.fetch_add(1, Ordering::AcqRel);
        if live >= max_connections {
            shared.connections.fetch_sub(1, Ordering::AcqRel);
            reject(stream, max_connections);
            continue;
        }

        let id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            if let Ok(mut streams) = shared.streams.lock() {
                streams.push((id, clone));
            }
        }
        let worker = {
            let registry = Arc::clone(registry);
            let shared = Arc::clone(shared);
            thread::Builder::new().name("pmx-serve-conn".into()).spawn(move || {
                let _guard = ConnGuard { shared, id };
                serve_connection(stream, &registry);
            })
        };
        match worker {
            Ok(handle) => {
                if let Ok(mut workers) = shared.workers.lock() {
                    // Opportunistically reap finished threads so a
                    // long-running server's handle list stays bounded.
                    workers.retain(|h| !h.is_finished());
                    workers.push(handle);
                }
            }
            Err(_) => {
                shared.connections.fetch_sub(1, Ordering::AcqRel);
                if let Ok(mut streams) = shared.streams.lock() {
                    streams.retain(|&(sid, _)| sid != id);
                }
            }
        }
    }
}

fn reject(mut stream: TcpStream, max_connections: usize) {
    let frame = encode_response(
        0,
        &Response::Error {
            code: ErrorCode::TooManyConnections.code(),
            detail: format!("server is at its {max_connections}-connection cap"),
        },
    );
    let _ = stream.write_all(&frame);
    let _ = stream.shutdown(Shutdown::Both);
}
