//! The `pmx serve` front-end: a threaded TCP accept loop over the shared
//! [`Registry`], with a connection-count admission gate and a clean
//! shutdown path (no async runtime — one OS thread per live connection,
//! which at the session counts this workspace targets is cheaper than an
//! executor the container does not have).

use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

use crate::conn::serve_connection;
use crate::protocol::{encode_response, ErrorCode, Response};
use crate::registry::Registry;

/// A running server: the bound address plus the handles a clean shutdown
/// needs. Dropping the handle shuts the server down.
pub struct Server {
    addr: SocketAddr,
    registry: Arc<Registry>,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    shared: Arc<Shared>,
}

/// State the accept loop and the shutdown path share.
struct Shared {
    /// Live connection count — the admission gate.
    connections: AtomicUsize,
    /// Next connection id; keys `streams` so guards remove exactly their
    /// own entry (peer addresses are useless as keys: `getpeername` fails
    /// on a reset connection).
    next_conn_id: AtomicU64,
    /// Read-half clones of every live connection, keyed by connection id,
    /// so shutdown can unblock readers parked in `read_exact` without
    /// per-read timeouts.
    streams: Mutex<Vec<(u64, TcpStream)>>,
    /// Joinable reader threads (each joins its own writer before exiting).
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// Decrements the live-connection count and drops the tracked stream clone
/// even if the connection thread unwinds.
struct ConnGuard {
    shared: Arc<Shared>,
    id: u64,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.shared.connections.fetch_sub(1, Ordering::AcqRel);
        if let Ok(mut streams) = self.shared.streams.lock() {
            streams.retain(|&(id, _)| id != self.id);
        }
    }
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// accepting connections against `registry`.
    pub fn bind(addr: impl ToSocketAddrs, registry: Arc<Registry>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared {
            connections: AtomicUsize::new(0),
            next_conn_id: AtomicU64::new(0),
            streams: Mutex::new(Vec::new()),
            workers: Mutex::new(Vec::new()),
        });
        let accept = {
            let registry = Arc::clone(&registry);
            let shutdown = Arc::clone(&shutdown);
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("pmx-serve-accept".into())
                .spawn(move || accept_loop(&listener, &registry, &shutdown, &shared))?
        };
        Ok(Self { addr, registry, shutdown, accept: Some(accept), shared })
    }

    /// The bound address (with the resolved port when bound to port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry this server dispatches into.
    #[must_use]
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Live connections right now.
    #[must_use]
    pub fn connection_count(&self) -> usize {
        self.shared.connections.load(Ordering::Acquire)
    }

    /// Stops accepting, unblocks and joins every connection thread, then
    /// joins the accept loop. Idempotent.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the accept loop out of `accept()` with a throwaway connect.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Unblock readers parked in read_exact.
        if let Ok(streams) = self.shared.streams.lock() {
            for (_, s) in streams.iter() {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
        let workers = {
            let mut w = crate::sync::lock(&self.shared.workers);
            std::mem::take(&mut *w)
        };
        for handle in workers {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// The server handle crosses threads in tests and embedders; keep the
// bound a compile-time fact (see the matching assert in `registry`).
const _: () = {
    const fn send_sync<T: Send + Sync>() {}
    send_sync::<Server>();
};

fn accept_loop(
    listener: &TcpListener,
    registry: &Arc<Registry>,
    shutdown: &Arc<AtomicBool>,
    shared: &Arc<Shared>,
) {
    let max_connections = registry.limits().max_connections;
    for stream in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = stream else { continue };

        // Admission gate: over the cap, answer with the typed reject and
        // close — never park the client in the backlog.
        let live = shared.connections.fetch_add(1, Ordering::AcqRel);
        if live >= max_connections {
            shared.connections.fetch_sub(1, Ordering::AcqRel);
            reject(stream, max_connections);
            continue;
        }

        let id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            if let Ok(mut streams) = shared.streams.lock() {
                streams.push((id, clone));
            }
        }
        let worker = {
            let registry = Arc::clone(registry);
            let shared = Arc::clone(shared);
            thread::Builder::new().name("pmx-serve-conn".into()).spawn(move || {
                let _guard = ConnGuard { shared, id };
                serve_connection(stream, &registry);
            })
        };
        match worker {
            Ok(handle) => {
                if let Ok(mut workers) = shared.workers.lock() {
                    // Opportunistically reap finished threads so a
                    // long-running server's handle list stays bounded.
                    workers.retain(|h| !h.is_finished());
                    workers.push(handle);
                }
            }
            Err(_) => {
                shared.connections.fetch_sub(1, Ordering::AcqRel);
                if let Ok(mut streams) = shared.streams.lock() {
                    streams.retain(|&(sid, _)| sid != id);
                }
            }
        }
    }
}

fn reject(mut stream: TcpStream, max_connections: usize) {
    let frame = encode_response(
        0,
        &Response::Error {
            code: ErrorCode::TooManyConnections.code(),
            detail: format!("server is at its {max_connections}-connection cap"),
        },
    );
    let _ = stream.write_all(&frame);
    let _ = stream.shutdown(Shutdown::Both);
}
