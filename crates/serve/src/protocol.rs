//! The `pmx serve` wire protocol: length-prefixed binary frames over TCP.
//!
//! Every frame is a little-endian `u32` length prefix (the byte length of
//! the body, the prefix excluded) followed by the body. Request bodies
//! start with an opcode byte and a client-chosen `u64` request id the
//! server echoes back; response bodies start with a status byte (0 = ok,
//! 1 = error) and the echoed id:
//!
//! ```text
//! frame:     len u32 | body  (len <= the server's max_frame_bytes cap)
//! request:   opcode u8 | request_id u64 | payload
//! response:  status u8 | request_id u64 | payload
//! error:     status=1  | request_id u64 | code u16 | detail (u32 len | utf8)
//! ```
//!
//! The first request on a connection must be [`Request::Hello`] (magic +
//! protocol version + tenant id); everything after it addresses that
//! tenant's resident session. Encoding rides the shared
//! [`privacy_maxent::wire`] helpers — the same bounds-checked [`Reader`]
//! the persistence formats are fuzzed through, so no input byte stream can
//! drive the decoder to a panic or an unbounded allocation.
//!
//! Error codes split into **protocol** errors (the server answers with the
//! typed code and then closes the connection — the stream can no longer be
//! trusted to be frame-aligned) and **application** errors (the request
//! failed, the connection and the session stay live). [`ErrorCode::is_fatal`]
//! encodes the split.

use pm_microdata::value::Value;
use privacy_maxent::delta::{DeltaOp, TableDelta};
use privacy_maxent::error::PmError;
use privacy_maxent::knowledge::Knowledge;
use privacy_maxent::wire::{Reader, Writer};

/// Magic opening [`Request::Hello`]: mis-directed or garbage connections
/// fail the handshake with a typed error instead of being interpreted.
pub const PROTO_MAGIC: [u8; 8] = *b"PMXSRV\0\0";
/// Protocol version; bump on any frame-layout change.
pub const PROTO_VERSION: u32 = 1;
/// Byte length of the frame length prefix.
pub const FRAME_HEADER_LEN: usize = 4;
/// Upper bound accepted for a tenant id, in bytes.
pub const MAX_TENANT_LEN: usize = 256;

/// Request opcodes (first body byte).
pub mod op {
    /// Handshake: magic, version, tenant id.
    pub const HELLO: u8 = 1;
    /// Single conditional query `P*(s | q)`.
    pub const QUERY: u8 = 2;
    /// Batched conditional queries.
    pub const BATCH: u8 = 3;
    /// Add a batch of distribution-knowledge items.
    pub const ADD_KNOWLEDGE: u8 = 4;
    /// Remove a knowledge item by handle.
    pub const REMOVE: u8 = 5;
    /// Catch the session up to the latest epoch and re-solve dirty work.
    pub const REFRESH: u8 = 6;
    /// Fork the session into a new tenant id.
    pub const FORK: u8 = 7;
    /// Apply a record-level table delta, advancing the shared epoch.
    pub const TABLE_DELTA: u8 = 8;
    /// Privacy report of the current estimate.
    pub const REPORT: u8 = 9;
    /// Liveness / latency probe.
    pub const PING: u8 = 10;
}

/// Typed protocol / application error codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
#[non_exhaustive]
pub enum ErrorCode {
    /// Frame length prefix exceeds the server's cap. Fatal.
    FrameTooLarge = 1,
    /// Body failed to decode (truncated, trailing garbage, bad counts,
    /// out-of-range enum tags). Fatal.
    Malformed = 2,
    /// Handshake magic mismatch. Fatal.
    BadMagic = 3,
    /// Handshake protocol version mismatch. Fatal.
    BadVersion = 4,
    /// Unknown opcode byte. Fatal.
    UnknownOpcode = 5,
    /// A non-hello request arrived before the handshake. Fatal.
    HandshakeRequired = 6,
    /// A second hello arrived on an already-bound connection. Fatal.
    DuplicateHello = 7,
    /// The client read too slowly: its bounded write queue overflowed and
    /// the server is shedding it. Fatal.
    SlowConsumer = 8,
    /// Admission control: the server is at its connection cap. Fatal.
    TooManyConnections = 9,
    /// Admission control: the server is at its resident-tenant cap. Fatal.
    TooManyTenants = 10,
    /// Graceful drain: the server is shutting down and closes every
    /// connection after sending this as its final frame. Fatal.
    ShuttingDown = 11,
    /// Catch-all application failure (engine error; detail carries the
    /// `PmError` display).
    App = 100,
    /// Query coordinates outside the published domains.
    InvalidQuery = 101,
    /// Knowledge handle is not live in this session.
    StaleHandle = 102,
    /// Fork target tenant already exists.
    TenantExists = 103,
    /// The table delta was rejected (invalid op against the current epoch).
    InvalidDelta = 104,
    /// The delta made the session infeasible; it keeps serving its previous
    /// estimate (remove the offending knowledge and refresh to recover).
    Infeasible = 105,
    /// A batch exceeded the server's max_batch admission cap. The frame
    /// decoded cleanly and the stream is still aligned, so the connection
    /// stays live for a compliant retry.
    OversizedBatch = 106,
}

impl ErrorCode {
    /// Whether the server closes the connection after sending this code.
    /// Protocol-level failures are fatal — the byte stream can no longer
    /// be trusted to be frame-aligned; application failures keep the
    /// connection and the tenant session live.
    #[must_use]
    pub fn is_fatal(self) -> bool {
        (self as u16) < 100
    }

    /// The wire representation.
    #[must_use]
    pub fn code(self) -> u16 {
        self as u16
    }

    /// Decodes a wire code (`None` for unknown codes — forward compat).
    #[must_use]
    pub fn from_code(code: u16) -> Option<Self> {
        Some(match code {
            1 => Self::FrameTooLarge,
            2 => Self::Malformed,
            3 => Self::BadMagic,
            4 => Self::BadVersion,
            5 => Self::UnknownOpcode,
            6 => Self::HandshakeRequired,
            7 => Self::DuplicateHello,
            8 => Self::SlowConsumer,
            9 => Self::TooManyConnections,
            10 => Self::TooManyTenants,
            11 => Self::ShuttingDown,
            100 => Self::App,
            101 => Self::InvalidQuery,
            102 => Self::StaleHandle,
            103 => Self::TenantExists,
            104 => Self::InvalidDelta,
            105 => Self::Infeasible,
            106 => Self::OversizedBatch,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}({})", self.code())
    }
}

/// One `P(sa = s | Qv) = p` knowledge item in wire form (the only
/// [`Knowledge`] variant the protocol carries — Section 6 individual
/// knowledge is pseudonym-keyed and not epoch-stable, so it stays a
/// library-level API).
#[derive(Debug, Clone, PartialEq)]
pub struct WireKnowledge {
    /// `(position within QI tuple, value)` pairs, ascending by position.
    pub antecedent: Vec<(u16, Value)>,
    /// The SA value.
    pub sa: Value,
    /// The pinned conditional probability.
    pub probability: f64,
}

impl WireKnowledge {
    /// Converts to the engine's [`Knowledge`] type.
    #[must_use]
    pub fn into_knowledge(self) -> Knowledge {
        Knowledge::Conditional {
            antecedent: self
                .antecedent
                .into_iter()
                .map(|(p, v)| (p as usize, v))
                .collect(),
            sa: self.sa,
            probability: self.probability,
        }
    }

    /// Converts from the engine's [`Knowledge`] type; `None` for the
    /// individual-knowledge variants the protocol does not carry, or when
    /// an antecedent position overflows the wire's `u16` (encoding a
    /// clamped position would silently change the knowledge).
    #[must_use]
    pub fn from_knowledge(k: &Knowledge) -> Option<Self> {
        match k {
            Knowledge::Conditional { antecedent, sa, probability } => {
                let antecedent = antecedent
                    .iter()
                    .map(|&(p, v)| u16::try_from(p).ok().map(|p| (p, v)))
                    .collect::<Option<Vec<_>>>()?;
                Some(Self { antecedent, sa: *sa, probability: *probability })
            }
            _ => None,
        }
    }
}

/// One record-level table operation in wire form (mirrors
/// [`privacy_maxent::delta::DeltaOp`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireDeltaOp {
    /// Insert a record `(qi tuple, sa)` into `bucket`.
    Insert {
        /// The record's QI tuple values.
        qi: Vec<Value>,
        /// The record's SA value.
        sa: Value,
        /// Destination bucket.
        bucket: u32,
    },
    /// Retract a record `(qi tuple, sa)` from `bucket`.
    Retract {
        /// The record's QI tuple values.
        qi: Vec<Value>,
        /// The record's SA value.
        sa: Value,
        /// Source bucket.
        bucket: u32,
    },
    /// Move a record between buckets.
    Move {
        /// The record's QI tuple values.
        qi: Vec<Value>,
        /// The record's SA value.
        sa: Value,
        /// Source bucket.
        from: u32,
        /// Destination bucket.
        to: u32,
    },
}

impl WireDeltaOp {
    /// Converts a batch of wire ops into an engine [`TableDelta`].
    #[must_use]
    pub fn into_delta(ops: Vec<Self>) -> TableDelta {
        let mut delta = TableDelta::new();
        for op in ops {
            delta = match op {
                Self::Insert { qi, sa, bucket } => delta.insert(qi, sa, bucket as usize),
                Self::Retract { qi, sa, bucket } => delta.retract(qi, sa, bucket as usize),
                Self::Move { qi, sa, from, to } => {
                    delta.move_record(qi, sa, from as usize, to as usize)
                }
            };
        }
        delta
    }

    /// Converts an engine [`DeltaOp`] to wire form.
    #[must_use]
    pub fn from_op(op: &DeltaOp) -> Self {
        match op {
            DeltaOp::Insert { qi, sa, bucket } => {
                Self::Insert { qi: qi.clone(), sa: *sa, bucket: *bucket as u32 }
            }
            DeltaOp::Retract { qi, sa, bucket } => {
                Self::Retract { qi: qi.clone(), sa: *sa, bucket: *bucket as u32 }
            }
            DeltaOp::Move { qi, sa, from, to } => Self::Move {
                qi: qi.clone(),
                sa: *sa,
                from: *from as u32,
                to: *to as u32,
            },
        }
    }
}

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Handshake: bind this connection to `tenant`'s resident session
    /// (creating it if absent).
    Hello {
        /// Tenant id (UTF-8, at most [`MAX_TENANT_LEN`] bytes).
        tenant: String,
    },
    /// `P*(s | q)` from the tenant's current snapshot.
    Query {
        /// QI symbol id.
        q: u32,
        /// SA value.
        s: Value,
    },
    /// Batched queries, answered in order from one snapshot.
    Batch {
        /// `(q, s)` pairs.
        queries: Vec<(u32, Value)>,
    },
    /// Add distribution knowledge; compiles eagerly, returns handles.
    AddKnowledge {
        /// The items, in insertion order.
        items: Vec<WireKnowledge>,
    },
    /// Remove a knowledge item by handle.
    Remove {
        /// The handle returned by a previous add.
        handle: u64,
    },
    /// Rebase to the latest epoch and re-solve dirty components.
    Refresh,
    /// Fork this tenant's session into a new tenant.
    Fork {
        /// The new tenant id.
        tenant: String,
    },
    /// Apply a record-level delta to the shared table, advancing the epoch.
    TableDelta {
        /// The record operations, applied atomically.
        ops: Vec<WireDeltaOp>,
    },
    /// Privacy report of the tenant's current estimate.
    Report,
    /// Liveness probe.
    Ping,
}

/// Deterministic slice of [`privacy_maxent::analyst::RefreshStats`] the
/// refresh response carries (wall/solver timings are deliberately absent:
/// every response byte is replayable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RefreshSummary {
    /// Epoch the session now serves.
    pub epoch: u64,
    /// Components in the partition.
    pub components: u64,
    /// Components re-solved numerically.
    pub resolved: u64,
    /// Components reverted to the closed form.
    pub closed_form: u64,
    /// Components reused verbatim.
    pub reused: u64,
}

/// Deterministic slice of the tenant's privacy report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReportSummary {
    /// Live knowledge items.
    pub knowledge_items: u64,
    /// Components in the current partition.
    pub components: u64,
    /// Epoch of the served estimate.
    pub epoch: u64,
    /// `max_{q,s} P*(s | q)`.
    pub max_disclosure: f64,
    /// `1 / max_disclosure`.
    pub effective_l_diversity: f64,
    /// `min_q H(S | Q = q)` in nats.
    pub min_conditional_entropy: f64,
}

/// Table shape the hello response advertises (what a client needs to form
/// valid queries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HelloInfo {
    /// Epoch of the tenant's served estimate.
    pub epoch: u64,
    /// Buckets in the published table.
    pub buckets: u64,
    /// Distinct QI symbols (valid `q` is `0..distinct_qi`).
    pub distinct_qi: u64,
    /// SA domain cardinality (valid `s` is `0..sa_cardinality`).
    pub sa_cardinality: u64,
}

/// A decoded server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake accepted.
    Hello(HelloInfo),
    /// Single query result.
    Query {
        /// `P*(s | q)`.
        p: f64,
    },
    /// Batched query results, in request order.
    Batch {
        /// One probability per query.
        ps: Vec<f64>,
    },
    /// Knowledge added; handles in item order.
    AddKnowledge {
        /// Stable per-session handles.
        handles: Vec<u64>,
    },
    /// Knowledge removed.
    Removed,
    /// Refresh completed.
    Refresh(RefreshSummary),
    /// Fork created.
    Forked,
    /// Delta applied; the shared table is now at this epoch.
    TableDelta {
        /// The new epoch.
        epoch: u64,
    },
    /// Privacy report.
    Report(ReportSummary),
    /// Pong.
    Pong,
    /// Typed failure.
    Error {
        /// The typed code ([`ErrorCode::is_fatal`] decides whether the
        /// server closed the connection after it).
        code: u16,
        /// Human-readable detail.
        detail: String,
    },
}

// ----------------------------------------------------------------- encode

fn put_string(w: &mut Writer, s: &str) {
    w.count(s.len());
    w.extend(s.as_bytes());
}

fn put_knowledge(w: &mut Writer, k: &WireKnowledge) {
    w.u16(k.antecedent.len() as u16);
    for &(pos, v) in &k.antecedent {
        w.u16(pos);
        w.u16(v);
    }
    w.u16(k.sa);
    w.f64(k.probability);
}

fn put_delta_op(w: &mut Writer, op: &WireDeltaOp) {
    match op {
        WireDeltaOp::Insert { qi, sa, bucket } => {
            w.u8(0);
            w.u16(qi.len() as u16);
            for &v in qi {
                w.u16(v);
            }
            w.u16(*sa);
            w.u32(*bucket);
        }
        WireDeltaOp::Retract { qi, sa, bucket } => {
            w.u8(1);
            w.u16(qi.len() as u16);
            for &v in qi {
                w.u16(v);
            }
            w.u16(*sa);
            w.u32(*bucket);
        }
        WireDeltaOp::Move { qi, sa, from, to } => {
            w.u8(2);
            w.u16(qi.len() as u16);
            for &v in qi {
                w.u16(v);
            }
            w.u16(*sa);
            w.u32(*from);
            w.u32(*to);
        }
    }
}

/// Encodes a request as one complete frame (length prefix included).
#[must_use]
pub fn encode_request(request_id: u64, req: &Request) -> Vec<u8> {
    let mut w = Writer::new();
    match req {
        Request::Hello { tenant } => {
            w.u8(op::HELLO);
            w.u64(request_id);
            w.extend(&PROTO_MAGIC);
            w.u32(PROTO_VERSION);
            put_string(&mut w, tenant);
        }
        Request::Query { q, s } => {
            w.u8(op::QUERY);
            w.u64(request_id);
            w.u32(*q);
            w.u16(*s);
        }
        Request::Batch { queries } => {
            w.u8(op::BATCH);
            w.u64(request_id);
            w.count(queries.len());
            for &(q, s) in queries {
                w.u32(q);
                w.u16(s);
            }
        }
        Request::AddKnowledge { items } => {
            w.u8(op::ADD_KNOWLEDGE);
            w.u64(request_id);
            w.count(items.len());
            for item in items {
                put_knowledge(&mut w, item);
            }
        }
        Request::Remove { handle } => {
            w.u8(op::REMOVE);
            w.u64(request_id);
            w.u64(*handle);
        }
        Request::Refresh => {
            w.u8(op::REFRESH);
            w.u64(request_id);
        }
        Request::Fork { tenant } => {
            w.u8(op::FORK);
            w.u64(request_id);
            put_string(&mut w, tenant);
        }
        Request::TableDelta { ops } => {
            w.u8(op::TABLE_DELTA);
            w.u64(request_id);
            w.count(ops.len());
            for op in ops {
                put_delta_op(&mut w, op);
            }
        }
        Request::Report => {
            w.u8(op::REPORT);
            w.u64(request_id);
        }
        Request::Ping => {
            w.u8(op::PING);
            w.u64(request_id);
        }
    }
    frame(w.into_bytes())
}

/// Encodes a response as one complete frame (length prefix included).
#[must_use]
pub fn encode_response(request_id: u64, resp: &Response) -> Vec<u8> {
    let mut w = Writer::new();
    match resp {
        Response::Error { code, detail } => {
            w.u8(1);
            w.u64(request_id);
            w.u16(*code);
            put_string(&mut w, detail);
        }
        ok => {
            w.u8(0);
            w.u64(request_id);
            match ok {
                Response::Hello(info) => {
                    w.u8(op::HELLO);
                    w.u64(info.epoch);
                    w.u64(info.buckets);
                    w.u64(info.distinct_qi);
                    w.u64(info.sa_cardinality);
                }
                Response::Query { p } => {
                    w.u8(op::QUERY);
                    w.f64(*p);
                }
                Response::Batch { ps } => {
                    w.u8(op::BATCH);
                    w.count(ps.len());
                    for &p in ps {
                        w.f64(p);
                    }
                }
                Response::AddKnowledge { handles } => {
                    w.u8(op::ADD_KNOWLEDGE);
                    w.count(handles.len());
                    for &h in handles {
                        w.u64(h);
                    }
                }
                Response::Removed => w.u8(op::REMOVE),
                Response::Refresh(r) => {
                    w.u8(op::REFRESH);
                    w.u64(r.epoch);
                    w.u64(r.components);
                    w.u64(r.resolved);
                    w.u64(r.closed_form);
                    w.u64(r.reused);
                }
                Response::Forked => w.u8(op::FORK),
                Response::TableDelta { epoch } => {
                    w.u8(op::TABLE_DELTA);
                    w.u64(*epoch);
                }
                Response::Report(r) => {
                    w.u8(op::REPORT);
                    w.u64(r.knowledge_items);
                    w.u64(r.components);
                    w.u64(r.epoch);
                    w.f64(r.max_disclosure);
                    w.f64(r.effective_l_diversity);
                    w.f64(r.min_conditional_entropy);
                }
                Response::Pong => w.u8(op::PING),
                Response::Error { .. } => unreachable!("handled above"),
            }
        }
    }
    frame(w.into_bytes())
}

fn frame(body: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

// ----------------------------------------------------------------- decode

/// A decode failure: the typed code plus detail. The connection state
/// machine turns this into an error response and (the codes being fatal)
/// a close.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// The typed code (always fatal for decode failures).
    pub code: ErrorCode,
    /// Human-readable detail.
    pub detail: String,
}

fn malformed(e: &PmError) -> DecodeError {
    DecodeError { code: ErrorCode::Malformed, detail: e.to_string() }
}

fn get_string(r: &mut Reader<'_>, max: usize, what: &str) -> Result<String, DecodeError> {
    let len = r.len(1, what).map_err(|e| malformed(&e))?;
    if len > max {
        return Err(DecodeError {
            code: ErrorCode::Malformed,
            detail: format!("{what} length {len} exceeds the {max}-byte cap"),
        });
    }
    let bytes = r.take(len).map_err(|e| malformed(&e))?;
    String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError {
        code: ErrorCode::Malformed,
        detail: format!("{what} is not valid UTF-8"),
    })
}

fn get_knowledge(r: &mut Reader<'_>) -> Result<WireKnowledge, DecodeError> {
    let n = r.u16().map_err(|e| malformed(&e))? as usize;
    if n.saturating_mul(4) > r.remaining() {
        return Err(DecodeError {
            code: ErrorCode::Malformed,
            detail: format!("antecedent count {n} cannot fit the remaining payload"),
        });
    }
    let mut antecedent = Vec::with_capacity(n);
    for _ in 0..n {
        let pos = r.u16().map_err(|e| malformed(&e))?;
        let v = r.u16().map_err(|e| malformed(&e))?;
        antecedent.push((pos, v));
    }
    let sa = r.u16().map_err(|e| malformed(&e))?;
    let probability = r.f64().map_err(|e| malformed(&e))?;
    Ok(WireKnowledge { antecedent, sa, probability })
}

fn get_qi(r: &mut Reader<'_>) -> Result<Vec<Value>, DecodeError> {
    let n = r.u16().map_err(|e| malformed(&e))? as usize;
    if n.saturating_mul(2) > r.remaining() {
        return Err(DecodeError {
            code: ErrorCode::Malformed,
            detail: format!("qi tuple length {n} cannot fit the remaining payload"),
        });
    }
    let mut qi = Vec::with_capacity(n);
    for _ in 0..n {
        qi.push(r.u16().map_err(|e| malformed(&e))?);
    }
    Ok(qi)
}

fn get_delta_op(r: &mut Reader<'_>) -> Result<WireDeltaOp, DecodeError> {
    let tag = r.u8().map_err(|e| malformed(&e))?;
    let qi = get_qi(r)?;
    let sa = r.u16().map_err(|e| malformed(&e))?;
    Ok(match tag {
        0 => WireDeltaOp::Insert { qi, sa, bucket: r.u32().map_err(|e| malformed(&e))? },
        1 => WireDeltaOp::Retract { qi, sa, bucket: r.u32().map_err(|e| malformed(&e))? },
        2 => WireDeltaOp::Move {
            qi,
            sa,
            from: r.u32().map_err(|e| malformed(&e))?,
            to: r.u32().map_err(|e| malformed(&e))?,
        },
        other => {
            return Err(DecodeError {
                code: ErrorCode::Malformed,
                detail: format!("unknown delta op tag {other}"),
            })
        }
    })
}

/// Decodes one request body (the frame's length prefix already stripped).
///
/// On failure the echoed request id is best-effort: 0 when the body is too
/// short to even carry one.
pub fn decode_request(body: &[u8]) -> Result<(u64, Request), (u64, DecodeError)> {
    let mut r = Reader::new(body, 0, "request");
    let opcode = r.u8().map_err(|e| (0, malformed(&e)))?;
    let id = r.u64().map_err(|e| (0, malformed(&e)))?;
    let fail = |e: DecodeError| (id, e);
    let req = match opcode {
        op::HELLO => {
            let magic = r.take(8).map_err(|e| fail(malformed(&e)))?;
            if magic != PROTO_MAGIC {
                return Err(fail(DecodeError {
                    code: ErrorCode::BadMagic,
                    detail: format!("handshake magic {magic:02x?} is not PMXSRV"),
                }));
            }
            let version = r.u32().map_err(|e| fail(malformed(&e)))?;
            if version != PROTO_VERSION {
                return Err(fail(DecodeError {
                    code: ErrorCode::BadVersion,
                    detail: format!(
                        "protocol version {version} unsupported (server speaks {PROTO_VERSION})"
                    ),
                }));
            }
            let tenant = get_string(&mut r, MAX_TENANT_LEN, "tenant id").map_err(fail)?;
            if tenant.is_empty() {
                return Err(fail(DecodeError {
                    code: ErrorCode::Malformed,
                    detail: "tenant id must be non-empty".into(),
                }));
            }
            Request::Hello { tenant }
        }
        op::QUERY => {
            let q = r.u32().map_err(|e| fail(malformed(&e)))?;
            let s = r.u16().map_err(|e| fail(malformed(&e)))?;
            Request::Query { q, s }
        }
        op::BATCH => {
            let n = r.len(6, "batch query").map_err(|e| fail(malformed(&e)))?;
            let mut queries = Vec::with_capacity(n);
            for _ in 0..n {
                let q = r.u32().map_err(|e| fail(malformed(&e)))?;
                let s = r.u16().map_err(|e| fail(malformed(&e)))?;
                queries.push((q, s));
            }
            Request::Batch { queries }
        }
        op::ADD_KNOWLEDGE => {
            let n = r.len(12, "knowledge item").map_err(|e| fail(malformed(&e)))?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(get_knowledge(&mut r).map_err(fail)?);
            }
            Request::AddKnowledge { items }
        }
        op::REMOVE => Request::Remove { handle: r.u64().map_err(|e| fail(malformed(&e)))? },
        op::REFRESH => Request::Refresh,
        op::FORK => {
            let tenant = get_string(&mut r, MAX_TENANT_LEN, "fork tenant id").map_err(fail)?;
            if tenant.is_empty() {
                return Err(fail(DecodeError {
                    code: ErrorCode::Malformed,
                    detail: "fork tenant id must be non-empty".into(),
                }));
            }
            Request::Fork { tenant }
        }
        op::TABLE_DELTA => {
            let n = r.len(9, "delta op").map_err(|e| fail(malformed(&e)))?;
            let mut ops = Vec::with_capacity(n);
            for _ in 0..n {
                ops.push(get_delta_op(&mut r).map_err(fail)?);
            }
            Request::TableDelta { ops }
        }
        op::REPORT => Request::Report,
        op::PING => Request::Ping,
        other => {
            return Err(fail(DecodeError {
                code: ErrorCode::UnknownOpcode,
                detail: format!("unknown opcode {other}"),
            }))
        }
    };
    r.finish().map_err(|e| fail(malformed(&e)))?;
    Ok((id, req))
}

/// Decodes one response body (client side; the frame's length prefix
/// already stripped). Errors are plain strings — a client that cannot
/// parse a response treats the connection as broken.
pub fn decode_response(body: &[u8]) -> Result<(u64, Response), String> {
    let mut r = Reader::new(body, 0, "response");
    let fail = |e: PmError| e.to_string();
    let status = r.u8().map_err(fail)?;
    let id = r.u64().map_err(fail)?;
    if status == 1 {
        let code = r.u16().map_err(fail)?;
        let len = r.len(1, "detail").map_err(fail)?;
        let detail = String::from_utf8_lossy(r.take(len).map_err(fail)?).into_owned();
        r.finish().map_err(fail)?;
        return Ok((id, Response::Error { code, detail }));
    }
    if status != 0 {
        return Err(format!("unknown response status {status}"));
    }
    let tag = r.u8().map_err(fail)?;
    let resp = match tag {
        op::HELLO => Response::Hello(HelloInfo {
            epoch: r.u64().map_err(fail)?,
            buckets: r.u64().map_err(fail)?,
            distinct_qi: r.u64().map_err(fail)?,
            sa_cardinality: r.u64().map_err(fail)?,
        }),
        op::QUERY => Response::Query { p: r.f64().map_err(fail)? },
        op::BATCH => {
            let n = r.len(8, "batch result").map_err(fail)?;
            let mut ps = Vec::with_capacity(n);
            for _ in 0..n {
                ps.push(r.f64().map_err(fail)?);
            }
            Response::Batch { ps }
        }
        op::ADD_KNOWLEDGE => {
            let n = r.len(8, "handle").map_err(fail)?;
            let mut handles = Vec::with_capacity(n);
            for _ in 0..n {
                handles.push(r.u64().map_err(fail)?);
            }
            Response::AddKnowledge { handles }
        }
        op::REMOVE => Response::Removed,
        op::REFRESH => Response::Refresh(RefreshSummary {
            epoch: r.u64().map_err(fail)?,
            components: r.u64().map_err(fail)?,
            resolved: r.u64().map_err(fail)?,
            closed_form: r.u64().map_err(fail)?,
            reused: r.u64().map_err(fail)?,
        }),
        op::FORK => Response::Forked,
        op::TABLE_DELTA => Response::TableDelta { epoch: r.u64().map_err(fail)? },
        op::REPORT => Response::Report(ReportSummary {
            knowledge_items: r.u64().map_err(fail)?,
            components: r.u64().map_err(fail)?,
            epoch: r.u64().map_err(fail)?,
            max_disclosure: r.f64().map_err(fail)?,
            effective_l_diversity: r.f64().map_err(fail)?,
            min_conditional_entropy: r.f64().map_err(fail)?,
        }),
        op::PING => Response::Pong,
        other => return Err(format!("unknown response tag {other}")),
    };
    r.finish().map_err(fail)?;
    Ok((id, resp))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let frame = encode_request(42, &req);
        let body = &frame[FRAME_HEADER_LEN..];
        assert_eq!(
            u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize,
            body.len(),
            "length prefix covers the body exactly"
        );
        let (id, decoded) = decode_request(body).expect("round trip");
        assert_eq!(id, 42);
        assert_eq!(decoded, req);
    }

    fn round_trip_response(resp: Response) {
        let frame = encode_response(7, &resp);
        let (id, decoded) = decode_response(&frame[FRAME_HEADER_LEN..]).expect("round trip");
        assert_eq!(id, 7);
        assert_eq!(decoded, resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Hello { tenant: "acme".into() });
        round_trip_request(Request::Query { q: 3, s: 1 });
        round_trip_request(Request::Batch { queries: vec![(0, 0), (9, 2)] });
        round_trip_request(Request::AddKnowledge {
            items: vec![WireKnowledge {
                antecedent: vec![(0, 5), (2, 1)],
                sa: 3,
                probability: 0.25,
            }],
        });
        round_trip_request(Request::Remove { handle: 11 });
        round_trip_request(Request::Refresh);
        round_trip_request(Request::Fork { tenant: "what-if".into() });
        round_trip_request(Request::TableDelta {
            ops: vec![
                WireDeltaOp::Insert { qi: vec![1, 2], sa: 0, bucket: 4 },
                WireDeltaOp::Retract { qi: vec![0], sa: 1, bucket: 2 },
                WireDeltaOp::Move { qi: vec![3], sa: 2, from: 1, to: 0 },
            ],
        });
        round_trip_request(Request::Report);
        round_trip_request(Request::Ping);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Hello(HelloInfo {
            epoch: 3,
            buckets: 10,
            distinct_qi: 40,
            sa_cardinality: 5,
        }));
        round_trip_response(Response::Query { p: 0.125 });
        round_trip_response(Response::Batch { ps: vec![0.5, 0.25] });
        round_trip_response(Response::AddKnowledge { handles: vec![0, 1, 2] });
        round_trip_response(Response::Removed);
        round_trip_response(Response::Refresh(RefreshSummary {
            epoch: 1,
            components: 5,
            resolved: 2,
            closed_form: 1,
            reused: 2,
        }));
        round_trip_response(Response::Forked);
        round_trip_response(Response::TableDelta { epoch: 9 });
        round_trip_response(Response::Report(ReportSummary {
            knowledge_items: 2,
            components: 3,
            epoch: 0,
            max_disclosure: 0.6,
            effective_l_diversity: 1.0 / 0.6,
            min_conditional_entropy: 0.9,
        }));
        round_trip_response(Response::Pong);
        round_trip_response(Response::Error { code: 2, detail: "nope".into() });
    }

    #[test]
    fn truncated_bodies_are_typed_errors() {
        let frame = encode_request(1, &Request::Hello { tenant: "t".into() });
        let body = &frame[FRAME_HEADER_LEN..];
        for cut in 0..body.len() {
            let err = decode_request(&body[..cut]);
            assert!(err.is_err(), "truncation at {cut} must not decode");
        }
    }

    #[test]
    fn bad_magic_and_version_are_distinct_codes() {
        let mut frame = encode_request(1, &Request::Hello { tenant: "t".into() });
        // Opcode(1) + id(8) puts the magic at body offset 9.
        frame[FRAME_HEADER_LEN + 9] ^= 0xFF;
        let (_, e) = decode_request(&frame[FRAME_HEADER_LEN..]).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadMagic);

        let mut frame = encode_request(1, &Request::Hello { tenant: "t".into() });
        frame[FRAME_HEADER_LEN + 17] = 0xEE; // version word
        let (_, e) = decode_request(&frame[FRAME_HEADER_LEN..]).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadVersion);
    }

    #[test]
    fn oversized_counts_cannot_drive_allocation() {
        // A batch claiming u32::MAX queries in a 10-byte payload.
        let mut w = privacy_maxent::wire::Writer::new();
        w.u8(op::BATCH);
        w.u64(5);
        w.u32(u32::MAX);
        let (_, e) = decode_request(w.bytes()).unwrap_err();
        assert_eq!(e.code, ErrorCode::Malformed);
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut frame = encode_request(3, &Request::Refresh);
        frame.extend_from_slice(&[0xAA, 0xBB]);
        // Re-frame with the longer length.
        let body_len = frame.len() - FRAME_HEADER_LEN;
        frame[..4].copy_from_slice(&(body_len as u32).to_le_bytes());
        let (id, e) = decode_request(&frame[FRAME_HEADER_LEN..]).unwrap_err();
        assert_eq!(id, 3);
        assert_eq!(e.code, ErrorCode::Malformed);
    }

    #[test]
    fn fatality_split_matches_the_code_ranges() {
        assert!(ErrorCode::Malformed.is_fatal());
        assert!(ErrorCode::SlowConsumer.is_fatal());
        assert!(ErrorCode::TooManyTenants.is_fatal());
        // A draining server closes every connection after this frame.
        assert!(ErrorCode::ShuttingDown.is_fatal());
        assert!(!ErrorCode::App.is_fatal());
        assert!(!ErrorCode::StaleHandle.is_fatal());
        // The batch decoded cleanly, so an oversized one must not cost the
        // connection.
        assert!(!ErrorCode::OversizedBatch.is_fatal());
        for code in [1u16, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 100, 101, 102, 103, 104, 105, 106] {
            let c = ErrorCode::from_code(code).expect("known code");
            assert_eq!(c.code(), code);
        }
        assert!(ErrorCode::from_code(999).is_none());
    }
}
