//! A blocking `pmx serve` client over one TCP connection — the handshake,
//! request-id bookkeeping and response decoding the CLI, the load
//! generator and the test suites all share.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use pm_microdata::value::Value;

use crate::protocol::{
    decode_response, encode_request, ErrorCode, HelloInfo, RefreshSummary, ReportSummary,
    Request, Response, WireDeltaOp, WireKnowledge, FRAME_HEADER_LEN,
};

/// Largest response body the client will accept (matches the server's
/// default frame cap with headroom).
const MAX_RESPONSE_BYTES: usize = 64 << 20;

/// A client-side failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The socket failed or closed mid-frame.
    Io(String),
    /// The server's bytes did not decode as a response (or answered the
    /// wrong request id) — the connection is broken.
    Protocol(String),
    /// The server answered a typed error. [`ErrorCode::is_fatal`] on the
    /// decoded code says whether the server also closed the connection.
    Server {
        /// The wire error code.
        code: u16,
        /// Human-readable detail from the server.
        detail: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Protocol(e) => write!(f, "protocol error: {e}"),
            Self::Server { code, detail } => match ErrorCode::from_code(*code) {
                Some(c) => write!(f, "server error {c}: {detail}"),
                None => write!(f, "server error code {code}: {detail}"),
            },
        }
    }
}

impl std::error::Error for ClientError {}

/// One authenticated (handshaken) connection to a `pmx serve` instance.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    hello: HelloInfo,
}

impl Client {
    /// Connects and handshakes as `tenant`.
    pub fn connect(addr: impl ToSocketAddrs, tenant: &str) -> Result<Self, ClientError> {
        let stream =
            TcpStream::connect(addr).map_err(|e| ClientError::Io(e.to_string()))?;
        let _ = stream.set_nodelay(true);
        let mut client = Self {
            stream,
            next_id: 0,
            hello: HelloInfo { epoch: 0, buckets: 0, distinct_qi: 0, sa_cardinality: 0 },
        };
        match client.call(&Request::Hello { tenant: tenant.to_string() })? {
            Response::Hello(info) => {
                client.hello = info;
                Ok(client)
            }
            other => Err(ClientError::Protocol(format!(
                "expected a hello response, got {other:?}"
            ))),
        }
    }

    /// The table shape the server advertised at handshake.
    #[must_use]
    pub fn hello(&self) -> HelloInfo {
        self.hello
    }

    /// Sends one request and reads its response (typed errors become
    /// [`ClientError::Server`]).
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let frame = encode_request(id, req);
        self.stream.write_all(&frame).map_err(|e| ClientError::Io(e.to_string()))?;
        let body = self.read_frame()?;
        let (got_id, resp) = decode_response(&body).map_err(ClientError::Protocol)?;
        if got_id != id && !matches!(resp, Response::Error { .. }) {
            return Err(ClientError::Protocol(format!(
                "response id {got_id} does not match request id {id}"
            )));
        }
        match resp {
            Response::Error { code, detail } => Err(ClientError::Server { code, detail }),
            ok => Ok(ok),
        }
    }

    fn read_frame(&mut self) -> Result<Vec<u8>, ClientError> {
        let mut header = [0u8; FRAME_HEADER_LEN];
        self.stream.read_exact(&mut header).map_err(|e| ClientError::Io(e.to_string()))?;
        let len = u32::from_le_bytes(header) as usize;
        if len > MAX_RESPONSE_BYTES {
            return Err(ClientError::Protocol(format!(
                "response frame of {len} bytes exceeds the client's cap"
            )));
        }
        let mut body = vec![0u8; len];
        self.stream.read_exact(&mut body).map_err(|e| ClientError::Io(e.to_string()))?;
        Ok(body)
    }

    fn expect<T>(
        resp: Response,
        extract: impl FnOnce(Response) -> Option<T>,
        what: &str,
    ) -> Result<T, ClientError> {
        let debug = format!("{resp:?}");
        extract(resp).ok_or_else(|| {
            ClientError::Protocol(format!("expected a {what} response, got {debug}"))
        })
    }

    /// `P*(s | q)` from the tenant's current snapshot.
    pub fn query(&mut self, q: u32, s: Value) -> Result<f64, ClientError> {
        let resp = self.call(&Request::Query { q, s })?;
        Self::expect(
            resp,
            |r| match r {
                Response::Query { p } => Some(p),
                _ => None,
            },
            "query",
        )
    }

    /// Batched queries, answered in order from one snapshot.
    pub fn batch(&mut self, queries: Vec<(u32, Value)>) -> Result<Vec<f64>, ClientError> {
        let resp = self.call(&Request::Batch { queries })?;
        Self::expect(
            resp,
            |r| match r {
                Response::Batch { ps } => Some(ps),
                _ => None,
            },
            "batch",
        )
    }

    /// Adds knowledge; returns one stable handle per item.
    pub fn add_knowledge(
        &mut self,
        items: Vec<WireKnowledge>,
    ) -> Result<Vec<u64>, ClientError> {
        let resp = self.call(&Request::AddKnowledge { items })?;
        Self::expect(
            resp,
            |r| match r {
                Response::AddKnowledge { handles } => Some(handles),
                _ => None,
            },
            "add-knowledge",
        )
    }

    /// Removes a knowledge item by handle.
    pub fn remove(&mut self, handle: u64) -> Result<(), ClientError> {
        let resp = self.call(&Request::Remove { handle })?;
        Self::expect(
            resp,
            |r| match r {
                Response::Removed => Some(()),
                _ => None,
            },
            "remove",
        )
    }

    /// Catches the session up to the newest epoch and re-solves dirty work.
    pub fn refresh(&mut self) -> Result<RefreshSummary, ClientError> {
        let resp = self.call(&Request::Refresh)?;
        Self::expect(
            resp,
            |r| match r {
                Response::Refresh(s) => Some(s),
                _ => None,
            },
            "refresh",
        )
    }

    /// Forks this tenant's session into `tenant`.
    pub fn fork(&mut self, tenant: &str) -> Result<(), ClientError> {
        let resp = self.call(&Request::Fork { tenant: tenant.to_string() })?;
        Self::expect(
            resp,
            |r| match r {
                Response::Forked => Some(()),
                _ => None,
            },
            "fork",
        )
    }

    /// Applies a table delta; returns the new shared epoch.
    pub fn table_delta(&mut self, ops: Vec<WireDeltaOp>) -> Result<u64, ClientError> {
        let resp = self.call(&Request::TableDelta { ops })?;
        Self::expect(
            resp,
            |r| match r {
                Response::TableDelta { epoch } => Some(epoch),
                _ => None,
            },
            "table-delta",
        )
    }

    /// The tenant's privacy report.
    pub fn report(&mut self) -> Result<ReportSummary, ClientError> {
        let resp = self.call(&Request::Report)?;
        Self::expect(
            resp,
            |r| match r {
                Response::Report(s) => Some(s),
                _ => None,
            },
            "report",
        )
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let resp = self.call(&Request::Ping)?;
        Self::expect(
            resp,
            |r| match r {
                Response::Pong => Some(()),
                _ => None,
            },
            "pong",
        )
    }
}
