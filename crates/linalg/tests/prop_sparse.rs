//! Property tests: CSR products agree with dense reference computations.

use pm_linalg::{CsrMatrix, Triplet};
use proptest::prelude::*;

fn triplets_strategy(
    max_dim: usize,
    max_nnz: usize,
) -> impl Strategy<Value = (usize, usize, Vec<Triplet>)> {
    (1..max_dim, 1..max_dim).prop_flat_map(move |(nr, nc)| {
        let t = (0..nr, 0..nc, -10.0f64..10.0)
            .prop_map(|(row, col, val)| Triplet { row, col, val });
        proptest::collection::vec(t, 0..max_nnz).prop_map(move |v| (nr, nc, v))
    })
}

fn dense_matvec(d: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
    d.iter()
        .map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum())
        .collect()
}

proptest! {
    #[test]
    fn matvec_matches_dense((nr, nc, ts) in triplets_strategy(12, 60),
                            seed in 0u64..1000) {
        let m = CsrMatrix::from_triplets(nr, nc, &ts);
        let x: Vec<f64> = (0..nc).map(|i| ((i as u64 * 2654435761 + seed) % 17) as f64 - 8.0).collect();
        let mut y = vec![0.0; nr];
        m.matvec(&x, &mut y);
        let want = dense_matvec(&m.to_dense(), &x);
        for (a, b) in y.iter().zip(&want) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn transpose_matvec_matches_dense((nr, nc, ts) in triplets_strategy(12, 60)) {
        let m = CsrMatrix::from_triplets(nr, nc, &ts);
        let x: Vec<f64> = (0..nr).map(|i| (i as f64) - 3.0).collect();
        let mut y = vec![0.0; nc];
        m.matvec_transpose(&x, &mut y);
        let d = m.to_dense();
        for c in 0..nc {
            let want: f64 = (0..nr).map(|r| d[r][c] * x[r]).sum();
            prop_assert!((y[c] - want).abs() < 1e-9);
        }
    }

    #[test]
    fn rank_bounded((nr, nc, ts) in triplets_strategy(8, 30)) {
        let m = CsrMatrix::from_triplets(nr, nc, &ts);
        let r = m.rank(1e-10);
        prop_assert!(r <= nr.min(nc));
    }
}
