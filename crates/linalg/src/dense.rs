//! Dense `f64` vector kernels.
//!
//! All functions assert matching lengths in debug builds; the solvers only
//! ever pair vectors created with identical dimensions.

/// Dot product `xᵀy`.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// In-place `y ← y + alpha·x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place `x ← alpha·x`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Max norm `‖x‖∞`.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, v| m.max(v.abs()))
}

/// Elementwise difference norm `‖x − y‖∞`.
#[inline]
pub fn diff_inf(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter()
        .zip(y)
        .fold(0.0, |m, (a, b)| m.max((a - b).abs()))
}

/// Copies `src` into `dst`.
#[inline]
pub fn copy(src: &[f64], dst: &mut [f64]) {
    dst.copy_from_slice(src);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [4.0, 5.0, 6.0];
        assert_eq!(dot(&x, &y), 32.0);
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [6.0, 9.0, 12.0]);
        scale(0.5, &mut y);
        assert_eq!(y, [3.0, 4.5, 6.0]);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        assert_eq!(diff_inf(&[1.0, 5.0], &[2.0, 5.0]), 1.0);
    }

    #[test]
    fn empty_vectors() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(norm2(&[]), 0.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }
}
