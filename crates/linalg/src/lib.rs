//! # pm-linalg
//!
//! Minimal dense/sparse linear-algebra kernels backing the hand-written
//! maxent solvers in `pm-solver`.
//!
//! The constraint systems of Privacy-MaxEnt are extremely sparse — each
//! QI-/SA-invariant touches at most `g·h ≤ 25` probability terms of one
//! bucket, and background-knowledge rows touch one term per (matching QI,
//! bucket) pair — so the workhorse is a [`sparse::CsrMatrix`] with `f64`
//! coefficients, supporting `A·x` and `Aᵀ·x` products.

pub mod dense;
pub mod sparse;

pub use dense::*;
pub use sparse::{CsrMatrix, Triplet};

// Compile-time contract: kernel types cross the engine's worker-pool
// threads (`pm-parallel`), so they must stay `Send + Sync` — no interior
// mutability or thread-local state may creep in.
const _: () = {
    const fn send_sync<T: Send + Sync>() {}
    send_sync::<CsrMatrix>();
    send_sync::<Triplet>();
};
