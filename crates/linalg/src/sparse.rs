//! Compressed sparse row matrices.

/// A `(row, col, value)` entry used to assemble a [`CsrMatrix`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triplet {
    /// Row index.
    pub row: usize,
    /// Column index.
    pub col: usize,
    /// Coefficient.
    pub val: f64,
}

/// An immutable CSR matrix with `f64` coefficients.
///
/// Built once from triplets (duplicate `(row, col)` entries are summed, a
/// convenience the constraint compiler relies on when a probability term
/// appears several times in one linear expression) and then used for
/// matrix-vector products in the solver hot loop.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from triplets. Duplicates are summed; explicit
    /// zeros (including duplicates cancelling to zero) are kept, which is
    /// harmless for the solver and keeps assembly single-pass.
    ///
    /// # Panics
    /// Panics if any triplet lies outside `nrows × ncols`.
    pub fn from_triplets(nrows: usize, ncols: usize, triplets: &[Triplet]) -> Self {
        for t in triplets {
            assert!(t.row < nrows && t.col < ncols, "triplet out of bounds");
        }
        // Counting sort by row.
        let mut row_counts = vec![0usize; nrows + 1];
        for t in triplets {
            row_counts[t.row + 1] += 1;
        }
        for i in 0..nrows {
            row_counts[i + 1] += row_counts[i];
        }
        let mut col_idx = vec![0usize; triplets.len()];
        let mut values = vec![0f64; triplets.len()];
        let mut cursor = row_counts.clone();
        for t in triplets {
            let pos = cursor[t.row];
            col_idx[pos] = t.col;
            values[pos] = t.val;
            cursor[t.row] += 1;
        }
        // Per-row: sort by column and merge duplicates.
        let mut out_col = Vec::with_capacity(triplets.len());
        let mut out_val = Vec::with_capacity(triplets.len());
        let mut row_ptr = vec![0usize; nrows + 1];
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..nrows {
            scratch.clear();
            let (lo, hi) = (row_counts[r], row_counts[r + 1]);
            scratch.extend(col_idx[lo..hi].iter().copied().zip(values[lo..hi].iter().copied()));
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut v = scratch[i].1;
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    v += scratch[j].1;
                    j += 1;
                }
                out_col.push(c);
                out_val.push(v);
                i = j;
            }
            row_ptr[r + 1] = out_col.len();
        }
        Self { nrows, ncols, row_ptr, col_idx: out_col, values: out_val }
    }

    /// Builds from per-row `(col, val)` lists (already deduplicated).
    pub fn from_rows(ncols: usize, rows: &[Vec<(usize, f64)>]) -> Self {
        let triplets: Vec<Triplet> = rows
            .iter()
            .enumerate()
            .flat_map(|(r, cols)| {
                cols.iter().map(move |&(c, v)| Triplet { row: r, col: c, val: v })
            })
            .collect();
        Self::from_triplets(rows.len(), ncols, &triplets)
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `(col, val)` entries of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// `y ← A·x`.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.ncols);
        debug_assert_eq!(y.len(), self.nrows);
        for (r, yr) in y.iter_mut().enumerate() {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *yr = acc;
        }
    }

    /// `y ← Aᵀ·x`.
    pub fn matvec_transpose(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.nrows);
        debug_assert_eq!(y.len(), self.ncols);
        y.fill(0.0);
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            for k in lo..hi {
                y[self.col_idx[k]] += self.values[k] * xr;
            }
        }
    }

    /// Dot product of row `r` with `x`.
    #[inline]
    pub fn row_dot(&self, r: usize, x: &[f64]) -> f64 {
        self.row(r).map(|(c, v)| v * x[c]).sum()
    }

    /// Returns the dense representation (tests / tiny problems only).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.ncols]; self.nrows];
        for (r, row) in d.iter_mut().enumerate() {
            for (c, v) in self.row(r) {
                row[c] += v;
            }
        }
        d
    }

    /// Computes the matrix rank via Gaussian elimination on a dense copy.
    ///
    /// Used by the conciseness tests (Theorem 3) on per-bucket invariant
    /// matrices; those are at most `(g+h) × g·h`, so dense elimination is
    /// fine.
    // The elimination inner loop indexes two distinct rows of `m` at the
    // same column, which iterators cannot express without split borrows.
    #[allow(clippy::needless_range_loop)]
    pub fn rank(&self, tol: f64) -> usize {
        let mut m = self.to_dense();
        let (nr, nc) = (self.nrows, self.ncols);
        let mut rank = 0;
        let mut row = 0;
        for col in 0..nc {
            if row >= nr {
                break;
            }
            // Partial pivoting.
            let mut piv = row;
            for r in row + 1..nr {
                if m[r][col].abs() > m[piv][col].abs() {
                    piv = r;
                }
            }
            if m[piv][col].abs() <= tol {
                continue;
            }
            m.swap(row, piv);
            let pivval = m[row][col];
            for r in 0..nr {
                if r != row && m[r][col].abs() > 0.0 {
                    let f = m[r][col] / pivval;
                    for c in col..nc {
                        m[r][c] -= f * m[row][c];
                    }
                }
            }
            row += 1;
            rank += 1;
        }
        rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [1 0 2]
        // [0 3 0]
        CsrMatrix::from_triplets(
            2,
            3,
            &[
                Triplet { row: 0, col: 2, val: 2.0 },
                Triplet { row: 0, col: 0, val: 1.0 },
                Triplet { row: 1, col: 1, val: 3.0 },
            ],
        )
    }

    #[test]
    fn assembly_sorts_and_dedups() {
        let m = CsrMatrix::from_triplets(
            1,
            2,
            &[
                Triplet { row: 0, col: 1, val: 1.0 },
                Triplet { row: 0, col: 1, val: 2.0 },
                Triplet { row: 0, col: 0, val: 5.0 },
            ],
        );
        let row: Vec<_> = m.row(0).collect();
        assert_eq!(row, vec![(0, 5.0), (1, 3.0)]);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn matvec_products() {
        let m = sample();
        let mut y = vec![0.0; 2];
        m.matvec(&[1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, vec![3.0, 3.0]);
        let mut z = vec![0.0; 3];
        m.matvec_transpose(&[1.0, 2.0], &mut z);
        assert_eq!(z, vec![1.0, 6.0, 2.0]);
        assert_eq!(m.row_dot(0, &[1.0, 0.0, 0.5]), 2.0);
    }

    #[test]
    fn dense_and_rank() {
        let m = sample();
        assert_eq!(m.to_dense(), vec![vec![1.0, 0.0, 2.0], vec![0.0, 3.0, 0.0]]);
        assert_eq!(m.rank(1e-12), 2);
        // Rank-deficient: rows sum to the same vector.
        let d = CsrMatrix::from_rows(
            2,
            &[
                vec![(0, 1.0), (1, 1.0)],
                vec![(0, 2.0), (1, 2.0)],
            ],
        );
        assert_eq!(d.rank(1e-12), 1);
    }

    #[test]
    fn from_rows_matches_triplets() {
        let a = CsrMatrix::from_rows(3, &[vec![(0, 1.0), (2, 2.0)], vec![(1, 3.0)]]);
        assert_eq!(a, sample());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_triplet_panics() {
        CsrMatrix::from_triplets(1, 1, &[Triplet { row: 0, col: 1, val: 1.0 }]);
    }

    #[test]
    fn empty_matrix() {
        let m = CsrMatrix::from_triplets(0, 0, &[]);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.rank(1e-12), 0);
    }
}
