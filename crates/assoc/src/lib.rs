//! # pm-assoc
//!
//! Positive and negative association-rule mining between quasi-identifier
//! value combinations and sensitive-attribute values (Section 4.4).
//!
//! The paper bounds adversarial background knowledge by the **Top-(K+, K−)
//! strongest associations**: mine every rule `Qv ⇒ s` (positive) and
//! `Qv ⇒ ¬s` (negative) whose support clears a minimum (3 records in the
//! evaluation), rank each polarity by confidence, and hand the top `K+`
//! positive and `K−` negative rules to the constraint compiler as
//! conditional-probability knowledge `P(s | Qv) = c`.
//!
//! [`miner::RuleMiner`] enumerates antecedents over QI-attribute subsets of
//! configurable arity `T` — Figure 6 of the paper sweeps exactly that
//! parameter.

pub mod combinations;
pub mod miner;
pub mod rule;

pub use miner::{MinedRules, MinerConfig, RuleMiner};
pub use rule::{AssociationRule, RulePolarity};
