//! The rule miner: antecedent enumeration, counting, and Top-(K+, K−)
//! selection.

use std::collections::HashMap;

use pm_microdata::dataset::Dataset;
use pm_microdata::value::{AttrId, Value};

use crate::combinations::combinations;
use crate::rule::{AssociationRule, RulePolarity};

/// Miner configuration.
#[derive(Debug, Clone)]
pub struct MinerConfig {
    /// Minimum rule support in records. The paper sets 3 ("each association
    /// rule must be supported by at least three records").
    pub min_support: usize,
    /// Antecedent arities to enumerate (`T` values). The paper's Figure 5
    /// mines all arities `1..=8`; Figure 6 isolates one `T` at a time.
    pub arities: Vec<usize>,
}

impl Default for MinerConfig {
    fn default() -> Self {
        Self { min_support: 3, arities: vec![1, 2, 3, 4, 5, 6, 7, 8] }
    }
}

/// The mined rule sets, each sorted strongest-first.
#[derive(Debug, Clone, Default)]
pub struct MinedRules {
    /// Positive rules, descending confidence.
    pub positive: Vec<AssociationRule>,
    /// Negative rules, descending confidence.
    pub negative: Vec<AssociationRule>,
}

impl MinedRules {
    /// The Top-(K+, K−) bound of Section 4.4: the strongest `k_pos` positive
    /// and `k_neg` negative rules.
    pub fn top_k(&self, k_pos: usize, k_neg: usize) -> Vec<&AssociationRule> {
        self.positive
            .iter()
            .take(k_pos)
            .chain(self.negative.iter().take(k_neg))
            .collect()
    }

    /// Total number of mined rules.
    pub fn len(&self) -> usize {
        self.positive.len() + self.negative.len()
    }

    /// Whether nothing was mined.
    pub fn is_empty(&self) -> bool {
        self.positive.is_empty() && self.negative.is_empty()
    }
}

/// The association-rule miner.
#[derive(Debug, Clone, Default)]
pub struct RuleMiner {
    /// Configuration used by [`RuleMiner::mine`].
    pub config: MinerConfig,
}

impl RuleMiner {
    /// Creates a miner.
    pub fn new(config: MinerConfig) -> Self {
        Self { config }
    }

    /// Mines all positive and negative rules of the configured arities from
    /// the **original** data — Section 4.2: "All we need is to derive the
    /// background knowledge from the original data", which also guarantees
    /// the resulting ME constraint system is feasible.
    pub fn mine(&self, data: &Dataset) -> MinedRules {
        let sa_attr = data
            .schema()
            .sensitive()
            .expect("mining requires a sensitive attribute");
        let sa_card = data.schema().sa_cardinality().expect("checked above");
        let qi_attrs = data.schema().qi_attrs().to_vec();

        let mut positive = Vec::new();
        let mut negative = Vec::new();
        let mut key = Vec::new();

        for &arity in &self.config.arities {
            for subset in combinations(&qi_attrs, arity) {
                // Count antecedent totals and per-SA joints in one scan.
                let mut table: HashMap<Vec<Value>, (usize, Vec<usize>)> = HashMap::new();
                for r in data.records() {
                    r.project_into(&subset, &mut key);
                    let entry = table
                        .entry(key.clone())
                        .or_insert_with(|| (0, vec![0; sa_card]));
                    entry.0 += 1;
                    entry.1[r.get(sa_attr) as usize] += 1;
                }
                for (qv, (total, per_sa)) in table {
                    let antecedent: Vec<(AttrId, Value)> =
                        subset.iter().copied().zip(qv.iter().copied()).collect();
                    for (s, &joint) in per_sa.iter().enumerate() {
                        // Positive rule Qv ⇒ s.
                        if joint >= self.config.min_support {
                            positive.push(AssociationRule {
                                antecedent: antecedent.clone(),
                                sa_value: s as Value,
                                polarity: RulePolarity::Positive,
                                antecedent_support: total,
                                support: joint,
                                confidence: joint as f64 / total as f64,
                            });
                        }
                        // Negative rule Qv ⇒ ¬s.
                        let against = total - joint;
                        if against >= self.config.min_support {
                            negative.push(AssociationRule {
                                antecedent: antecedent.clone(),
                                sa_value: s as Value,
                                polarity: RulePolarity::Negative,
                                antecedent_support: total,
                                support: against,
                                confidence: against as f64 / total as f64,
                            });
                        }
                    }
                }
            }
        }

        // Strongest first: confidence desc, then support desc, then a
        // deterministic structural order so runs are reproducible.
        let sort = |rules: &mut Vec<AssociationRule>| {
            rules.sort_by(|a, b| {
                b.confidence
                    .partial_cmp(&a.confidence)
                    .expect("confidences are finite")
                    .then(b.support.cmp(&a.support))
                    .then(a.antecedent.cmp(&b.antecedent))
                    .then(a.sa_value.cmp(&b.sa_value))
            });
        };
        sort(&mut positive);
        sort(&mut negative);
        MinedRules { positive, negative }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_datagen::workload::{synthetic_dataset, WorkloadConfig};
    use pm_microdata::fixtures::figure1_dataset;

    #[test]
    fn figure1_negative_breast_cancer_rule() {
        // "It is rare for male to have breast cancer": on Figure 1's data
        // P(breast cancer | male) = 0, so male ⇒ ¬breast-cancer is a
        // confidence-1 negative rule.
        let d = figure1_dataset();
        let mined = RuleMiner::new(MinerConfig { min_support: 3, arities: vec![1] }).mine(&d);
        let rule = mined
            .negative
            .iter()
            .find(|r| r.antecedent == vec![(0, 0)] && r.sa_value == 2)
            .expect("male ⇒ ¬breast-cancer must be mined");
        assert_eq!(rule.confidence, 1.0);
        assert_eq!(rule.antecedent_support, 6);
        assert!((rule.conditional_probability() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn figure1_positive_flu_rule() {
        // P(flu | male) = 3/6 — the fictitious example of Section 4.1.
        let d = figure1_dataset();
        let mined = RuleMiner::new(MinerConfig { min_support: 3, arities: vec![1] }).mine(&d);
        let rule = mined
            .positive
            .iter()
            .find(|r| r.antecedent == vec![(0, 0)] && r.sa_value == 0)
            .expect("male ⇒ flu");
        assert!((rule.confidence - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sorted_descending_by_confidence() {
        let d = synthetic_dataset(&WorkloadConfig {
            records: 3000,
            correlation: 0.7,
            seed: 5,
            ..Default::default()
        });
        let mined = RuleMiner::new(MinerConfig { min_support: 3, arities: vec![1, 2] }).mine(&d);
        assert!(!mined.is_empty());
        for w in mined.positive.windows(2) {
            assert!(w[0].confidence >= w[1].confidence);
        }
        for w in mined.negative.windows(2) {
            assert!(w[0].confidence >= w[1].confidence);
        }
    }

    #[test]
    fn min_support_enforced() {
        let d = synthetic_dataset(&WorkloadConfig { records: 500, seed: 6, ..Default::default() });
        let mined = RuleMiner::new(MinerConfig { min_support: 10, arities: vec![1] }).mine(&d);
        for r in mined.positive.iter().chain(&mined.negative) {
            assert!(r.support >= 10);
        }
    }

    #[test]
    fn correlation_raises_top_confidence() {
        let weak = synthetic_dataset(&WorkloadConfig {
            records: 4000,
            correlation: 0.1,
            seed: 7,
            ..Default::default()
        });
        let strong = synthetic_dataset(&WorkloadConfig {
            records: 4000,
            correlation: 0.9,
            seed: 7,
            ..Default::default()
        });
        let cfg = MinerConfig { min_support: 3, arities: vec![1] };
        let top_weak = RuleMiner::new(cfg.clone()).mine(&weak).positive[0].confidence;
        let top_strong = RuleMiner::new(cfg).mine(&strong).positive[0].confidence;
        assert!(
            top_strong > top_weak + 0.2,
            "strong {top_strong} vs weak {top_weak}"
        );
    }

    #[test]
    fn top_k_takes_from_both_polarities() {
        let d = figure1_dataset();
        let mined = RuleMiner::new(MinerConfig { min_support: 1, arities: vec![1] }).mine(&d);
        let picked = mined.top_k(2, 3);
        assert_eq!(picked.len(), 5);
        assert_eq!(
            picked.iter().filter(|r| r.polarity == RulePolarity::Positive).count(),
            2
        );
    }

    #[test]
    fn arity_filter_respected() {
        let d = figure1_dataset();
        let mined = RuleMiner::new(MinerConfig { min_support: 1, arities: vec![2] }).mine(&d);
        for r in mined.positive.iter().chain(&mined.negative) {
            assert_eq!(r.arity(), 2);
        }
    }

    #[test]
    fn deterministic_output() {
        let d = synthetic_dataset(&WorkloadConfig { records: 800, seed: 8, ..Default::default() });
        let a = RuleMiner::default().mine(&d);
        let b = RuleMiner::default().mine(&d);
        assert_eq!(a.positive, b.positive);
        assert_eq!(a.negative, b.negative);
    }
}
