//! Association rules between QI value combinations and SA values.

use pm_microdata::value::{AttrId, Value};

/// Polarity of an association rule (Section 4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RulePolarity {
    /// `Qv ⇒ s`: people with `Qv` are *likely* to have `s`.
    Positive,
    /// `Qv ⇒ ¬s`: people with `Qv` are *unlikely* to have `s` (the paper's
    /// "male ⇒ ¬breast-cancer" example).
    Negative,
}

/// One mined association rule.
#[derive(Debug, Clone, PartialEq)]
pub struct AssociationRule {
    /// Antecedent `Qv`: (attribute, value) pairs, ascending by attribute.
    pub antecedent: Vec<(AttrId, Value)>,
    /// The consequent SA value `s`.
    pub sa_value: Value,
    /// Polarity.
    pub polarity: RulePolarity,
    /// Records matching the antecedent (`#Qv`).
    pub antecedent_support: usize,
    /// Records supporting the rule: `#(Qv, s)` for positive rules,
    /// `#(Qv, ¬s)` for negative rules.
    pub support: usize,
    /// Rule confidence `support / antecedent_support`.
    pub confidence: f64,
}

impl AssociationRule {
    /// Number of QI attributes in the antecedent (the `T` of Figure 6).
    pub fn arity(&self) -> usize {
        self.antecedent.len()
    }

    /// The conditional probability `P(s | Qv)` this rule pins down when
    /// used as background knowledge: the confidence for positive rules,
    /// `1 − confidence` for negative ones.
    pub fn conditional_probability(&self) -> f64 {
        match self.polarity {
            RulePolarity::Positive => self.confidence,
            RulePolarity::Negative => 1.0 - self.confidence,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conditional_probability_by_polarity() {
        let mut r = AssociationRule {
            antecedent: vec![(0, 1)],
            sa_value: 2,
            polarity: RulePolarity::Positive,
            antecedent_support: 10,
            support: 8,
            confidence: 0.8,
        };
        assert!((r.conditional_probability() - 0.8).abs() < 1e-12);
        r.polarity = RulePolarity::Negative;
        assert!((r.conditional_probability() - 0.2).abs() < 1e-12);
        assert_eq!(r.arity(), 1);
    }
}
