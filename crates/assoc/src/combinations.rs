//! k-combination enumeration over attribute index slices.

/// Returns all `k`-element subsets of `items`, each sorted in input order.
///
/// Used to enumerate QI-attribute antecedent templates; with at most 8 QI
/// attributes there are ≤ 2⁸ subsets, so materialising is free.
pub fn combinations<T: Copy>(items: &[T], k: usize) -> Vec<Vec<T>> {
    let n = items.len();
    if k > n {
        return Vec::new();
    }
    if k == 0 {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(idx.iter().map(|&i| items[i]).collect());
        // Advance the combination odometer.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_counts() {
        assert_eq!(combinations(&[1, 2, 3, 4], 2).len(), 6);
        assert_eq!(combinations(&[1, 2, 3, 4, 5], 3).len(), 10);
        let eight: Vec<usize> = (0..8).collect();
        assert_eq!(combinations(&eight, 4).len(), 70);
    }

    #[test]
    fn edge_cases() {
        assert_eq!(combinations(&[1, 2], 0), vec![Vec::<i32>::new()]);
        assert_eq!(combinations(&[1, 2], 3), Vec::<Vec<i32>>::new());
        assert_eq!(combinations(&[7], 1), vec![vec![7]]);
    }

    #[test]
    fn lexicographic_and_unique() {
        let c = combinations(&[0, 1, 2, 3], 2);
        assert_eq!(c, vec![
            vec![0, 1], vec![0, 2], vec![0, 3],
            vec![1, 2], vec![1, 3], vec![2, 3],
        ]);
    }
}
