//! Property tests: mined rules are exactly consistent with dataset counts.

use pm_datagen::workload::{synthetic_dataset, WorkloadConfig};
use pm_assoc::miner::{MinerConfig, RuleMiner};
use pm_assoc::rule::RulePolarity;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every rule's support/confidence is re-derivable by direct counting.
    #[test]
    fn rule_statistics_match_direct_counts(
        records in 30usize..120,
        correlation in 0.0f64..1.0,
        seed in 0u64..500,
    ) {
        let data = synthetic_dataset(&WorkloadConfig {
            records,
            qi_arities: vec![3, 2],
            sa_arity: 4,
            correlation,
            seed,
        });
        let mined = RuleMiner::new(MinerConfig { min_support: 2, arities: vec![1, 2] })
            .mine(&data);
        let sa = data.schema().sensitive().unwrap();
        for rule in mined.positive.iter().chain(&mined.negative).take(200) {
            let attrs: Vec<usize> = rule.antecedent.iter().map(|&(a, _)| a).collect();
            let vals: Vec<u16> = rule.antecedent.iter().map(|&(_, v)| v).collect();
            let total = data.count_matching(&attrs, &vals);
            prop_assert_eq!(total, rule.antecedent_support);
            let mut joint_attrs = attrs.clone();
            joint_attrs.push(sa);
            let mut joint_vals = vals.clone();
            joint_vals.push(rule.sa_value);
            let joint = data.count_matching(&joint_attrs, &joint_vals);
            let expect_support = match rule.polarity {
                RulePolarity::Positive => joint,
                RulePolarity::Negative => total - joint,
            };
            prop_assert_eq!(expect_support, rule.support);
            prop_assert!(
                (rule.confidence - expect_support as f64 / total as f64).abs() < 1e-12
            );
            prop_assert!(rule.support >= 2, "min support respected");
        }
    }

    /// The conditional probability a rule pins is always a valid
    /// probability, and polarity inversion is exact.
    #[test]
    fn conditional_probabilities_valid(
        records in 30usize..100,
        seed in 0u64..500,
    ) {
        let data = synthetic_dataset(&WorkloadConfig {
            records,
            qi_arities: vec![4],
            sa_arity: 3,
            correlation: 0.6,
            seed,
        });
        let mined = RuleMiner::new(MinerConfig { min_support: 1, arities: vec![1] })
            .mine(&data);
        for rule in mined.positive.iter().chain(&mined.negative) {
            let p = rule.conditional_probability();
            prop_assert!((0.0..=1.0).contains(&p));
            match rule.polarity {
                RulePolarity::Positive => prop_assert!((p - rule.confidence).abs() < 1e-12),
                RulePolarity::Negative => {
                    prop_assert!((p - (1.0 - rule.confidence)).abs() < 1e-12)
                }
            }
        }
    }

    /// Raising the support threshold is monotone: the rules mined at a
    /// higher `min_support` are exactly the lower-threshold rules whose
    /// support already met it — no rule appears or changes its statistics.
    #[test]
    fn support_threshold_monotone(
        lo in 1usize..4,
        extra in 1usize..6,
        seed in 0u64..300,
    ) {
        let hi = lo + extra;
        let data = synthetic_dataset(&WorkloadConfig {
            records: 90,
            qi_arities: vec![3, 2],
            sa_arity: 4,
            correlation: 0.5,
            seed,
        });
        let loose = RuleMiner::new(MinerConfig { min_support: lo, arities: vec![1, 2] })
            .mine(&data);
        let tight = RuleMiner::new(MinerConfig { min_support: hi, arities: vec![1, 2] })
            .mine(&data);
        let filtered_pos: Vec<_> =
            loose.positive.iter().filter(|r| r.support >= hi).cloned().collect();
        let filtered_neg: Vec<_> =
            loose.negative.iter().filter(|r| r.support >= hi).cloned().collect();
        prop_assert_eq!(filtered_pos, tight.positive);
        prop_assert_eq!(filtered_neg, tight.negative);
    }

    /// Confidence sorting is genuinely monotone within each polarity, every
    /// confidence is a valid probability, and no (antecedent, SA value)
    /// rule is emitted twice.
    #[test]
    fn confidence_sorted_and_rules_unique(
        records in 40usize..150,
        correlation in 0.0f64..1.0,
        seed in 0u64..300,
    ) {
        let data = synthetic_dataset(&WorkloadConfig {
            records,
            qi_arities: vec![3, 2],
            sa_arity: 4,
            correlation,
            seed,
        });
        let mined = RuleMiner::new(MinerConfig { min_support: 1, arities: vec![1, 2] })
            .mine(&data);
        for rules in [&mined.positive, &mined.negative] {
            for w in rules.windows(2) {
                prop_assert!(w[0].confidence >= w[1].confidence);
            }
            let mut seen = std::collections::HashSet::new();
            for r in rules {
                prop_assert!(r.confidence > 0.0 && r.confidence <= 1.0);
                prop_assert!(
                    seen.insert((r.antecedent.clone(), r.sa_value)),
                    "duplicate rule for {:?} => {}", r.antecedent, r.sa_value
                );
            }
        }
    }

    /// Top-k never returns more than requested and respects the sort.
    #[test]
    fn top_k_contract(k_pos in 0usize..50, k_neg in 0usize..50, seed in 0u64..200) {
        let data = synthetic_dataset(&WorkloadConfig {
            records: 80,
            qi_arities: vec![3, 2],
            sa_arity: 4,
            correlation: 0.5,
            seed,
        });
        let mined = RuleMiner::new(MinerConfig { min_support: 1, arities: vec![1, 2] })
            .mine(&data);
        let picked = mined.top_k(k_pos, k_neg);
        let pos = picked.iter().filter(|r| r.polarity == RulePolarity::Positive).count();
        let neg = picked.len() - pos;
        prop_assert!(pos <= k_pos && neg <= k_neg);
        prop_assert_eq!(pos, k_pos.min(mined.positive.len()));
        prop_assert_eq!(neg, k_neg.min(mined.negative.len()));
    }
}
