//! Small parameterised dataset generators for tests and solver benches.

use pm_microdata::dataset::Dataset;
use pm_microdata::schema::{Schema, SchemaBuilder};
use pm_microdata::value::{Domain, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`synthetic_dataset`].
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of records.
    pub records: usize,
    /// Cardinality of each QI attribute.
    pub qi_arities: Vec<usize>,
    /// Cardinality of the SA attribute.
    pub sa_arity: usize,
    /// Coupling strength in `[0, 1]`: 0 = QI and SA independent,
    /// 1 = SA fully determined by the first QI attribute.
    pub correlation: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            records: 1000,
            qi_arities: vec![4, 4, 3],
            sa_arity: 6,
            correlation: 0.5,
            seed: 1,
        }
    }
}

fn schema_for(cfg: &WorkloadConfig) -> Schema {
    let mut b = SchemaBuilder::new();
    for (i, &ar) in cfg.qi_arities.iter().enumerate() {
        b = b.qi(&format!("qi{i}"), Domain::anonymous(ar));
    }
    b.sensitive("sa", Domain::anonymous(cfg.sa_arity))
        .build()
        .expect("workload schema is valid")
}

/// Generates a categorical dataset with a controllable QI↔SA coupling.
///
/// With probability `correlation`, the SA value is a deterministic function
/// of the first QI attribute (`sa = qi0 mod sa_arity`); otherwise it is
/// uniform. This produces association rules whose confidence rises smoothly
/// with `correlation`, which the mining tests rely on.
pub fn synthetic_dataset(cfg: &WorkloadConfig) -> Dataset {
    assert!(!cfg.qi_arities.is_empty(), "need at least one QI attribute");
    assert!((0.0..=1.0).contains(&cfg.correlation));
    let schema = schema_for(cfg);
    let mut data = Dataset::with_capacity(schema, cfg.records);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut row: Vec<Value> = vec![0; cfg.qi_arities.len() + 1];
    for _ in 0..cfg.records {
        for (i, &ar) in cfg.qi_arities.iter().enumerate() {
            row[i] = rng.random_range(0..ar) as Value;
        }
        let sa = if rng.random::<f64>() < cfg.correlation {
            (row[0] as usize) % cfg.sa_arity
        } else {
            rng.random_range(0..cfg.sa_arity)
        };
        row[cfg.qi_arities.len()] = sa as Value;
        data.push(&row).expect("generated record is schema-valid");
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_config_shape() {
        let cfg = WorkloadConfig { records: 123, ..Default::default() };
        let d = synthetic_dataset(&cfg);
        assert_eq!(d.len(), 123);
        assert_eq!(d.schema().qi_attrs().len(), 3);
        assert_eq!(d.schema().sa_cardinality().unwrap(), 6);
    }

    #[test]
    fn correlation_zero_is_roughly_uniform() {
        let cfg = WorkloadConfig {
            records: 20_000,
            correlation: 0.0,
            seed: 3,
            ..Default::default()
        };
        let d = synthetic_dataset(&cfg);
        for s in 0..6u16 {
            let p = d.probability(&[3], &[s]);
            assert!((p - 1.0 / 6.0).abs() < 0.02, "P(sa={s}) = {p}");
        }
    }

    #[test]
    fn correlation_one_is_deterministic() {
        let cfg = WorkloadConfig { records: 2000, correlation: 1.0, seed: 4, ..Default::default() };
        let d = synthetic_dataset(&cfg);
        for r in d.records() {
            assert_eq!(r.get(3) as usize, (r.get(0) as usize) % 6);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = WorkloadConfig { records: 50, ..Default::default() };
        let a = synthetic_dataset(&cfg);
        let b = synthetic_dataset(&cfg);
        for i in 0..50 {
            assert_eq!(a.record(i).values(), b.record(i).values());
        }
    }
}
