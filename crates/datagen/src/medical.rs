//! Synthetic hospital-discharge microdata.
//!
//! A second workload in the domain of the paper's motivating example
//! (demographics as QI, diagnosis as SA). Diseases carry strong
//! demographic priors — breast cancer is overwhelmingly female, prostate
//! cancer exclusively male, alzheimer skews old — so the generator yields
//! the deterministic-looking negative rules ("male ⇒ ¬breast-cancer") the
//! paper's introduction builds on.

use pm_microdata::dataset::Dataset;
use pm_microdata::schema::{Schema, SchemaBuilder};
use pm_microdata::value::{Domain, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for the generator.
#[derive(Debug, Clone)]
pub struct MedicalGeneratorConfig {
    /// Number of discharge records.
    pub records: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MedicalGeneratorConfig {
    fn default() -> Self {
        Self { records: 4_000, seed: 0xd15ea5e }
    }
}

/// Builds the hospital schema: 4 QI attributes + 12-value diagnosis SA.
pub fn medical_schema() -> Schema {
    SchemaBuilder::new()
        .qi("sex", Domain::new(["female", "male"]))
        .qi(
            "age-group",
            Domain::new(["0-17", "18-34", "35-49", "50-64", "65-79", "80+"]),
        )
        .qi(
            "zip-region",
            Domain::new(["north", "south", "east", "west", "central"]),
        )
        .qi(
            "insurance",
            Domain::new(["private", "public", "uninsured"]),
        )
        .sensitive(
            "diagnosis",
            Domain::new([
                "influenza",
                "pneumonia",
                "breast-cancer",
                "prostate-cancer",
                "hiv",
                "hepatitis",
                "diabetes",
                "hypertension",
                "asthma",
                "alzheimer",
                "depression",
                "fracture",
            ]),
        )
        .build()
        .expect("medical schema is valid")
}

/// The generator.
#[derive(Debug, Clone)]
pub struct MedicalGenerator {
    config: MedicalGeneratorConfig,
}

fn sample_weighted(rng: &mut SmallRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut u = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

impl MedicalGenerator {
    /// Creates a generator.
    pub fn new(config: MedicalGeneratorConfig) -> Self {
        Self { config }
    }

    /// Generates the dataset.
    pub fn generate(&self) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let mut data = Dataset::with_capacity(medical_schema(), self.config.records);
        for _ in 0..self.config.records {
            let sex = usize::from(rng.random::<f64>() < 0.49); // 1 = male
            let age = sample_weighted(&mut rng, &[0.12, 0.2, 0.2, 0.2, 0.18, 0.1]);
            let zip = sample_weighted(&mut rng, &[1.2, 1.0, 0.9, 1.0, 1.4]);
            let insurance = sample_weighted(&mut rng, &[0.55, 0.35, 0.10]);

            // Diagnosis weights conditioned on demographics.
            //                 flu  pneu  bc   pc   hiv  hep  diab hyp  asth alz  dep  frac
            let mut w: [f64; 12] =
                [1.2, 0.7, 0.25, 0.2, 0.15, 0.2, 0.8, 0.9, 0.5, 0.3, 0.7, 0.6];
            if sex == 1 {
                w[2] *= 0.01; // breast cancer nearly male-free
            } else {
                w[3] = 0.0; // prostate cancer strictly female-free
            }
            match age {
                0 => {
                    w[8] *= 2.5; // asthma
                    w[11] *= 1.8; // fractures
                    w[2] *= 0.05;
                    w[3] *= 0.0;
                    w[6] *= 0.2;
                    w[7] *= 0.1;
                    w[9] = 0.0; // no pediatric alzheimer
                }
                1 | 2 => {
                    w[4] *= 2.0; // hiv
                    w[10] *= 1.6; // depression
                    w[9] *= 0.02;
                }
                3 => {
                    w[6] *= 1.6;
                    w[7] *= 1.7;
                }
                _ => {
                    w[1] *= 1.8; // pneumonia
                    w[7] *= 2.0;
                    w[9] *= if age == 5 { 8.0 } else { 3.0 };
                    w[4] *= 0.2;
                }
            }
            if insurance == 2 {
                w[0] *= 1.4; // untreated flu
            }
            let diagnosis = sample_weighted(&mut rng, &w);
            data.push(&[
                sex as Value,
                age as Value,
                zip as Value,
                insurance as Value,
                diagnosis as Value,
            ])
            .expect("generated record is schema-valid");
        }
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let cfg = MedicalGeneratorConfig { records: 300, seed: 9 };
        let a = MedicalGenerator::new(cfg.clone()).generate();
        let b = MedicalGenerator::new(cfg).generate();
        assert_eq!(a.len(), 300);
        for i in 0..300 {
            assert_eq!(a.record(i).values(), b.record(i).values());
        }
    }

    #[test]
    fn prostate_cancer_is_male_only() {
        let d = MedicalGenerator::new(MedicalGeneratorConfig { records: 5000, seed: 2 })
            .generate();
        let pc = 3u16;
        // No female record carries prostate cancer.
        assert_eq!(d.count_matching(&[0, 4], &[0, pc]), 0);
        // But males do.
        assert!(d.count_matching(&[0, 4], &[1, pc]) > 0);
    }

    #[test]
    fn breast_cancer_negative_rule_exists() {
        let d = MedicalGenerator::new(MedicalGeneratorConfig { records: 5000, seed: 3 })
            .generate();
        let bc = 2u16;
        let p_bc_male = d
            .conditional_sa_probability(&[0], &[1], bc)
            .unwrap()
            .unwrap();
        let p_bc_female = d
            .conditional_sa_probability(&[0], &[0], bc)
            .unwrap()
            .unwrap();
        assert!(p_bc_male < 0.01, "P(bc | male) = {p_bc_male}");
        assert!(p_bc_female > 10.0 * p_bc_male.max(1e-6));
    }

    #[test]
    fn no_pediatric_alzheimer() {
        let d = MedicalGenerator::new(MedicalGeneratorConfig { records: 5000, seed: 4 })
            .generate();
        assert_eq!(d.count_matching(&[1, 4], &[0, 9]), 0);
    }
}
