//! # pm-datagen
//!
//! Seeded synthetic population generators.
//!
//! The paper evaluates on the UCI *Adult* census dataset (14,210 records,
//! eight quasi-identifier attributes, `education` as the 16-value sensitive
//! attribute). The dataset is not redistributable inside this offline
//! environment, so [`adult`] provides a **synthetic substitute with the same
//! schema**: identical attribute names, identical domain arities, and a
//! hand-built latent-class dependence model that produces the correlated,
//! heavy-tailed QI↔SA structure association-rule mining needs. See
//! `DESIGN.md` §2 for why this substitution preserves the paper's
//! experimental behaviour.
//!
//! [`workload`] adds smaller parameterised generators used by unit tests and
//! the solver-scaling benchmarks.

pub mod adult;
pub mod medical;
pub mod workload;
