//! Synthetic Adult-like census generator.
//!
//! Mirrors the UCI Adult schema used by the paper's evaluation: eight QI
//! attributes and `education` (16 categories) as the sensitive attribute.
//! Records are sampled from a latent-class model: a hidden socio-economic
//! stratum drives education, occupation, work class and age, while
//! marital status / relationship / sex form a second correlated block.
//! The result is a table with strong, heavy-tailed QI↔SA associations —
//! exactly the structure Top-(K+, K−) rule mining feeds on.

use pm_microdata::dataset::Dataset;
use pm_microdata::schema::{Schema, SchemaBuilder};
use pm_microdata::value::{Domain, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Number of latent socio-economic strata.
const CLASSES: usize = 5;

/// Configuration for the generator.
#[derive(Debug, Clone)]
pub struct AdultGeneratorConfig {
    /// Number of records (the paper uses 14,210 = 2,842 buckets × 5).
    pub records: usize,
    /// RNG seed; generation is fully deterministic given the seed.
    pub seed: u64,
}

impl Default for AdultGeneratorConfig {
    fn default() -> Self {
        Self { records: 14_210, seed: 0x5eed_2008 }
    }
}

/// The synthetic Adult generator.
#[derive(Debug, Clone)]
pub struct AdultGenerator {
    config: AdultGeneratorConfig,
}

/// Builds the Adult-like schema: 8 QI attributes + 16-value education SA,
/// matching the arities of the UCI original.
pub fn adult_schema() -> Schema {
    SchemaBuilder::new()
        .qi(
            "age",
            Domain::new([
                "17-24", "25-29", "30-34", "35-39", "40-44", "45-49", "50-54", "55-64", "65+",
            ]),
        )
        .qi(
            "workclass",
            Domain::new([
                "private",
                "self-emp-not-inc",
                "self-emp-inc",
                "federal-gov",
                "local-gov",
                "state-gov",
                "without-pay",
                "never-worked",
            ]),
        )
        .qi(
            "marital-status",
            Domain::new([
                "married-civ-spouse",
                "divorced",
                "never-married",
                "separated",
                "widowed",
                "married-spouse-absent",
                "married-af-spouse",
            ]),
        )
        .qi(
            "occupation",
            Domain::new([
                "tech-support",
                "craft-repair",
                "other-service",
                "sales",
                "exec-managerial",
                "prof-specialty",
                "handlers-cleaners",
                "machine-op-inspct",
                "adm-clerical",
                "farming-fishing",
                "transport-moving",
                "priv-house-serv",
                "protective-serv",
                "armed-forces",
            ]),
        )
        .qi(
            "relationship",
            Domain::new(["wife", "own-child", "husband", "not-in-family", "other-relative", "unmarried"]),
        )
        .qi(
            "race",
            Domain::new(["white", "asian-pac-islander", "amer-indian-eskimo", "other", "black"]),
        )
        .qi("sex", Domain::new(["female", "male"]))
        .qi(
            "native-region",
            Domain::new([
                "north-america",
                "central-america",
                "south-america",
                "western-europe",
                "eastern-europe",
                "east-asia",
                "south-asia",
                "southeast-asia",
                "caribbean",
                "other",
            ]),
        )
        .sensitive(
            "education",
            Domain::new([
                "preschool", "1st-4th", "5th-6th", "7th-8th", "9th", "10th", "11th", "12th",
                "hs-grad", "some-college", "assoc-voc", "assoc-acdm", "bachelors", "masters",
                "prof-school", "doctorate",
            ]),
        )
        .build()
        .expect("adult schema is valid")
}

/// Samples an index from unnormalised weights.
fn sample_weighted(rng: &mut SmallRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut u = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// A peaked categorical distribution over `n` values centred at `mu` with
/// geometric decay `rho` — the building block for class-conditional tables.
fn peaked(n: usize, mu: f64, rho: f64) -> Vec<f64> {
    (0..n)
        .map(|i| rho.powf((i as f64 - mu).abs()))
        .collect()
}

impl AdultGenerator {
    /// Creates a generator.
    pub fn new(config: AdultGeneratorConfig) -> Self {
        Self { config }
    }

    /// Generates the dataset.
    pub fn generate(&self) -> Dataset {
        let schema = adult_schema();
        let mut data = Dataset::with_capacity(schema, self.config.records);
        let mut rng = SmallRng::seed_from_u64(self.config.seed);

        // Latent-class prior: lower strata are more populous, giving the
        // heavy-tailed education marginal of the real Adult data.
        let class_prior = [0.28, 0.30, 0.20, 0.14, 0.08];

        // Class-conditional education peaks (SA has 16 levels, 0=preschool
        // … 15=doctorate). Higher strata peak at higher education.
        let edu_mu = [6.5, 8.0, 9.5, 12.0, 13.5];
        let edu_rho = [0.55, 0.45, 0.5, 0.55, 0.6];

        // Class-conditional occupation peaks (14 occupations ordered roughly
        // blue-collar → professional in the domain list above; the peak map
        // is deliberately non-monotone to create crossing associations).
        let occ_mu = [7.0, 2.0, 8.0, 4.5, 5.0];

        for _ in 0..self.config.records {
            let c = sample_weighted(&mut rng, &class_prior);

            let education = sample_weighted(&mut rng, &peaked(16, edu_mu[c], edu_rho[c]));

            // Age: higher strata skew older; 9 bands.
            let age_mu = 2.0 + 1.1 * c as f64;
            let age = sample_weighted(&mut rng, &peaked(9, age_mu, 0.6));

            // Work class: mostly private, government/self-employment rise
            // with stratum.
            let mut wc = vec![6.0, 0.8, 0.4, 0.5, 0.7, 0.6, 0.08, 0.05];
            wc[2] += 0.5 * c as f64; // self-emp-inc
            wc[3] += 0.3 * c as f64; // federal-gov
            let workclass = sample_weighted(&mut rng, &wc);

            // Sex, then marital/relationship block driven by age and sex.
            let sex = usize::from(rng.random::<f64>() < 0.52); // 1 = male
            let marital = if age == 0 {
                sample_weighted(&mut rng, &[0.08, 0.02, 0.85, 0.02, 0.0, 0.02, 0.01])
            } else {
                let married_w = 0.35 + 0.07 * age as f64;
                sample_weighted(
                    &mut rng,
                    &[married_w, 0.14, 0.25, 0.03, 0.02 * age as f64, 0.03, 0.005],
                )
            };
            let relationship = match (marital, sex) {
                (0, 1) | (6, 1) => 2,                       // husband
                (0, 0) | (6, 0) => 0,                       // wife
                (2, _) if age <= 1 => 1,                    // own-child
                _ => sample_weighted(&mut rng, &[0.0, 0.1, 0.0, 0.5, 0.15, 0.25]),
            };

            // Occupation couples to class and education (professionals need
            // degrees), pinning strong positive rules like
            // occupation=prof-specialty ⇒ education=bachelors+.
            let mut occ_w = peaked(14, occ_mu[c], 0.5);
            if education >= 12 {
                occ_w[4] += 1.5; // exec-managerial
                occ_w[5] += 2.5; // prof-specialty
                occ_w[0] += 0.8; // tech-support
            }
            if education <= 7 {
                occ_w[6] += 1.2; // handlers-cleaners
                occ_w[9] += 0.8; // farming-fishing
                occ_w[5] *= 0.1;
            }
            let occupation = sample_weighted(&mut rng, &occ_w);

            // Race / native region: mildly coupled to each other only.
            let race = sample_weighted(&mut rng, &[8.0, 0.6, 0.15, 0.2, 1.1]);
            let region_w: Vec<f64> = match race {
                1 => vec![2.0, 0.1, 0.1, 0.2, 0.1, 2.0, 1.5, 1.5, 0.1, 0.3],
                4 => vec![6.0, 0.4, 0.2, 0.1, 0.1, 0.1, 0.1, 0.1, 1.5, 0.3],
                _ => vec![8.0, 0.5, 0.2, 0.5, 0.3, 0.1, 0.1, 0.1, 0.2, 0.2],
            };
            let region = sample_weighted(&mut rng, &region_w);

            data.push(&[
                age as Value,
                workclass as Value,
                marital as Value,
                occupation as Value,
                relationship as Value,
                race as Value,
                sex as Value,
                region as Value,
                education as Value,
            ])
            .expect("generated record is schema-valid");
        }
        data
    }

    /// Number of latent classes in the model (exposed for diagnostics).
    pub fn num_classes() -> usize {
        CLASSES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_microdata::distribution::QiSaDistribution;

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = AdultGeneratorConfig { records: 500, seed: 42 };
        let a = AdultGenerator::new(cfg.clone()).generate();
        let b = AdultGenerator::new(cfg).generate();
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.record(i).values(), b.record(i).values());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = AdultGenerator::new(AdultGeneratorConfig { records: 200, seed: 1 }).generate();
        let b = AdultGenerator::new(AdultGeneratorConfig { records: 200, seed: 2 }).generate();
        let same = (0..200).all(|i| a.record(i).values() == b.record(i).values());
        assert!(!same);
    }

    #[test]
    fn schema_matches_paper_shape() {
        let s = adult_schema();
        assert_eq!(s.qi_attrs().len(), 8, "paper uses eight QI attributes");
        assert_eq!(s.sa_cardinality().unwrap(), 16, "education has 16 values");
    }

    #[test]
    fn education_is_correlated_with_occupation() {
        // The whole point of the generator: background knowledge must exist.
        let d = AdultGenerator::new(AdultGeneratorConfig { records: 8000, seed: 7 }).generate();
        let occ = d.schema().attr_by_name("occupation").unwrap();
        let prof = d.schema().attribute(occ).domain().code("prof-specialty").unwrap();
        let bach = d.schema().attribute(8).domain().code("bachelors").unwrap();
        let p_bach = d.probability(&[8], &[bach]);
        let p_bach_given_prof = d
            .conditional_sa_probability(&[occ], &[prof], bach)
            .unwrap()
            .unwrap();
        assert!(
            p_bach_given_prof > 1.5 * p_bach,
            "P(bachelors|prof-specialty)={p_bach_given_prof:.3} should exceed 1.5×P(bachelors)={p_bach:.3}"
        );
    }

    #[test]
    fn sa_marginal_not_too_peaked_for_5_diversity() {
        let d = AdultGenerator::new(AdultGeneratorConfig::default()).generate();
        let dist = QiSaDistribution::from_dataset(&d).unwrap();
        let max_freq = (0..16)
            .map(|s| dist.sa_marginal(s as Value))
            .fold(0.0f64, f64::max);
        // Anatomy with one exempt value tolerates a dominant SA value, but
        // the rest must be spread out.
        assert!(max_freq < 0.35, "max SA frequency {max_freq}");
    }

    #[test]
    fn all_sixteen_education_values_appear() {
        let d = AdultGenerator::new(AdultGeneratorConfig::default()).generate();
        let dist = QiSaDistribution::from_dataset(&d).unwrap();
        for s in 0..16 {
            assert!(dist.sa_marginal(s as Value) > 0.0, "education level {s} missing");
        }
    }
}
