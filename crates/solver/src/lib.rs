//! # pm-solver
//!
//! Hand-written convex optimization solvers for maximum-entropy estimation.
//!
//! The paper solves the constrained entropy maximisation by Lagrange duality
//! and then minimises the smooth convex dual with Nocedal's LBFGS \[16\]; it
//! also cites the generalized \[8\] and improved \[20\] iterative-scaling
//! algorithms and Malouf's comparison \[18\]. The Rust ecosystem offers only
//! thin wrappers for these, so this crate implements all of them from
//! scratch:
//!
//! * [`lbfgs`] — limited-memory BFGS with a strong-Wolfe line search
//!   (two-loop recursion, Nocedal & Wright Algorithms 3.5/3.6 and 7.4/7.5),
//! * [`gradient`] — steepest descent with the same line search,
//! * [`newton`] — damped Newton with dense Cholesky (small problems),
//! * [`scaling`] — GIS (Darroch–Ratcliff) and IIS (Della Pietra et al.)
//!   iterative scaling, specialised to the maxent dual,
//! * [`maxent`] — the dual objective `g(λ) = Σᵢ exp(aᵢᵀλ − 1) − cᵀλ`
//!   shared by every solver, with the primal read-out `pᵢ(λ)`.
//!
//! Every solver reports [`stats::SolveStats`] (iterations, function
//! evaluations, wall time) because Figure 7 of the paper plots exactly those
//! quantities.
//!
//! # Warm starts
//!
//! Every solver can resume from an arbitrary dual point, which is what the
//! incremental `Analyst` session in `privacy-maxent` feeds with the
//! previous refresh's multipliers:
//!
//! * [`Lbfgs::minimize`], [`conjugate_gradient::conjugate_gradient`],
//!   [`newton::newton_maxent`] and [`gradient::gradient_descent`] take the
//!   start point `x0` / `lambda0` directly — pass the cached dual instead
//!   of zeros.
//! * The iterative-scaling solvers historically hard-coded the origin;
//!   [`scaling::gis_from`], [`scaling::gis_with_primal_from`] and
//!   [`scaling::iis_from`] are their warm-start entry points (the zero-seed
//!   [`scaling::gis`] / [`scaling::iis`] wrappers delegate to them).
//!
//! A warm start never changes the optimum (the dual is convex); it only
//! changes the path — and therefore the low-order bits of the iterate the
//! solver stops at. Callers that promise bit-identical re-solves must seed
//! from zero.

pub mod conjugate_gradient;
pub mod gradient;
pub mod lbfgs;
pub mod line_search;
pub mod maxent;
pub mod newton;
pub mod objective;
pub mod scaling;
pub mod stats;

pub use lbfgs::Lbfgs;
pub use lbfgs::LbfgsConfig;
pub use maxent::MaxEntDual;
pub use objective::Objective;
pub use stats::SolveStats;

// Compile-time contract: the engine solves independent component systems
// on a `pm-parallel` worker pool, sharing solver state by reference and
// sending results back — every solver-facing type must stay `Send + Sync`.
const _: () = {
    const fn send_sync<T: Send + Sync>() {}
    send_sync::<MaxEntDual>();
    send_sync::<Lbfgs>();
    send_sync::<LbfgsConfig>();
    send_sync::<SolveStats>();
    send_sync::<stats::Solution>();
    send_sync::<stats::StopReason>();
    send_sync::<scaling::ScalingConfig>();
    send_sync::<gradient::GradientDescentConfig>();
};
