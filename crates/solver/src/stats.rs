//! Convergence reporting shared by all solvers.

use std::time::Duration;

/// Why a solver stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Gradient (or constraint-residual) norm fell below tolerance.
    Converged,
    /// Iteration budget exhausted before convergence.
    MaxIterations,
    /// The line search could not make progress (typically at numerical
    /// precision limits near the optimum).
    LineSearchFailed,
}

/// Outcome of a solve: the paper's Figure 7 plots exactly `iterations` and
/// `elapsed`, so every solver records them.
#[derive(Debug, Clone)]
pub struct SolveStats {
    /// Outer iterations performed.
    pub iterations: usize,
    /// Objective (value+gradient) evaluations.
    pub fn_evals: usize,
    /// Wall-clock time of the solve.
    pub elapsed: Duration,
    /// Final gradient / residual infinity norm.
    pub final_residual: f64,
    /// Why the solver stopped.
    pub stop: StopReason,
}

impl SolveStats {
    /// Whether the solve reached its tolerance.
    pub fn converged(&self) -> bool {
        self.stop == StopReason::Converged
    }
}

/// A solution paired with its statistics.
#[derive(Debug, Clone)]
pub struct Solution {
    /// The minimiser found (dual variables for maxent problems).
    pub x: Vec<f64>,
    /// Final objective value.
    pub value: f64,
    /// Convergence statistics.
    pub stats: SolveStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converged_flag() {
        let mk = |stop| SolveStats {
            iterations: 1,
            fn_evals: 2,
            elapsed: Duration::from_millis(1),
            final_residual: 0.0,
            stop,
        };
        assert!(mk(StopReason::Converged).converged());
        assert!(!mk(StopReason::MaxIterations).converged());
        assert!(!mk(StopReason::LineSearchFailed).converged());
    }
}
