//! Iterative-scaling solvers for the maxent dual.
//!
//! * **GIS** — Generalized Iterative Scaling (Darroch & Ratcliff \[8\]):
//!   requires non-negative features with constant per-term feature sums; a
//!   slack feature is added automatically to equalise sums.
//! * **IIS** — Improved Iterative Scaling (Della Pietra et al. \[20\]): drops
//!   the constant-sum requirement by solving a one-dimensional update
//!   equation per constraint.
//!
//! Both are majorise-minimise schemes on the convex dual, so they converge
//! monotonically on consistent constraint systems with strictly positive
//! targets (targets of zero must be eliminated beforehand; the core crate's
//! preprocessor guarantees that). The paper cites Malouf's comparison \[18\]
//! finding LBFGS fastest — `bench_solvers` reproduces that ranking.

use std::time::Instant;

use crate::maxent::MaxEntDual;
use crate::stats::{Solution, SolveStats, StopReason};
use pm_linalg::CsrMatrix;

/// Configuration shared by GIS and IIS.
#[derive(Debug, Clone)]
pub struct ScalingConfig {
    /// Convergence tolerance on the constraint residual `‖A·p − c‖∞`.
    pub tolerance: f64,
    /// Iteration budget (scaling methods need many more iterations than
    /// quasi-Newton ones; that gap is the experiment).
    pub max_iterations: usize,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        Self { tolerance: 1e-9, max_iterations: 50_000 }
    }
}

fn check_nonnegative(a: &CsrMatrix) {
    for r in 0..a.nrows() {
        for (_, v) in a.row(r) {
            assert!(v >= 0.0, "iterative scaling requires non-negative features");
        }
    }
}

/// Generalized Iterative Scaling.
///
/// `total_mass` is the known total probability mass `Σᵢ pᵢ` implied by the
/// constraint system (1 for a full Privacy-MaxEnt instance; the bucket-mass
/// sum for a decomposed component). It determines the slack feature's
/// target.
pub fn gis(dual: &MaxEntDual, total_mass: f64, cfg: &ScalingConfig) -> Solution {
    gis_from(dual, total_mass, cfg, &vec![0.0; dual.num_constraints()])
}

/// [`gis`] warm-started from the dual point `lambda0` instead of the
/// origin — the incremental-session entry point: re-solving a component
/// whose constraint system changed only slightly converges in far fewer
/// scaling passes when seeded with the previous refresh's multipliers.
/// (The internal slack multiplier always restarts at zero; it is recovered
/// in one bisection by [`gis_with_primal_from`].)
///
/// # Panics
/// Panics if `lambda0.len() != dual.num_constraints()`.
pub fn gis_from(
    dual: &MaxEntDual,
    total_mass: f64,
    cfg: &ScalingConfig,
    lambda0: &[f64],
) -> Solution {
    let a = dual.matrix();
    check_nonnegative(a);
    let start = Instant::now(); // pm-audit: allow(determinism, reason = "wall-clock telemetry only: feeds solve/build duration stats, never the estimate bytes")
    let n = a.ncols();
    let w = a.nrows();

    // Per-term feature sums; F = max.
    let mut colsum = vec![0.0f64; n];
    for r in 0..w {
        for (i, v) in a.row(r) {
            colsum[i] += v;
        }
    }
    let f_max = colsum.iter().fold(0.0f64, |m, &v| m.max(v));
    assert!(f_max > 0.0, "every term must appear in at least one constraint");

    // Slack feature s(i) = F − colsum(i), target F·mass − Σⱼ cⱼ.
    let target_sum: f64 = dual.targets().iter().sum();
    let slack_target = f_max * total_mass - target_sum;
    let use_slack = colsum.iter().any(|&v| (f_max - v).abs() > 1e-12);
    assert!(
        slack_target >= -1e-9 * (1.0 + target_sum.abs()),
        "inconsistent constraint system: negative slack target {slack_target}"
    );
    if use_slack && slack_target <= 1e-12 {
        // Boundary instance: the optimum puts zero mass on every term whose
        // feature sum is below F, which the exponential form cannot
        // represent. GIS's multiplicative update would need λ_slack → −∞;
        // report non-convergence and let the caller pick another solver.
        return Solution {
            value: f64::INFINITY,
            stats: SolveStats {
                iterations: 0,
                fn_evals: 0,
                elapsed: start.elapsed(),
                final_residual: f64::INFINITY,
                stop: StopReason::LineSearchFailed,
            },
            x: vec![0.0; w],
        };
    }

    assert_eq!(lambda0.len(), w, "warm-start dual dimension mismatch");
    let mut lambda = lambda0.to_vec();
    let mut lambda_slack = 0.0f64;
    let mut fn_evals = 0usize;
    let mut stop = StopReason::MaxIterations;
    let mut iterations = 0usize;
    let mut residual = f64::INFINITY;

    // p_i = exp(aᵢᵀλ + s(i)·λ_s − 1)
    let primal = |lambda: &[f64], lambda_slack: f64| -> Vec<f64> {
        let mut t = vec![0.0; n];
        a.matvec_transpose(lambda, &mut t);
        t.iter()
            .zip(&colsum)
            .map(|(&ti, &cs)| (ti + lambda_slack * (f_max - cs) - 1.0).exp())
            .collect()
    };

    for iter in 0..cfg.max_iterations {
        iterations = iter;
        let p = primal(&lambda, lambda_slack);
        fn_evals += 1;
        let mut ap = vec![0.0; w];
        a.matvec(&p, &mut ap);
        residual = ap
            .iter()
            .zip(dual.targets())
            .fold(0.0f64, |m, (a, c)| m.max((a - c).abs()));
        if use_slack {
            let slack_exp: f64 = p
                .iter()
                .zip(&colsum)
                .map(|(&pi, &cs)| pi * (f_max - cs))
                .sum();
            residual = residual.max((slack_exp - slack_target).abs());
            if slack_exp > 0.0 && slack_target > 0.0 {
                lambda_slack += (slack_target / slack_exp).ln() / f_max;
            }
        }
        if residual <= cfg.tolerance {
            stop = StopReason::Converged;
            break;
        }
        for (j, lam) in lambda.iter_mut().enumerate() {
            let c = dual.targets()[j];
            if ap[j] > 0.0 && c > 0.0 {
                *lam += (c / ap[j]).ln() / f_max;
            }
        }
        iterations = iter + 1;
    }

    let p = primal(&lambda, lambda_slack);
    Solution {
        value: p.iter().sum::<f64>() - pm_linalg::dot(dual.targets(), &lambda),
        stats: SolveStats {
            iterations,
            fn_evals,
            elapsed: start.elapsed(),
            final_residual: residual,
            stop,
        },
        // The slack multiplier is folded into the primal; callers use
        // `gis_primal` (below) or the returned residual, not `x`, to read
        // the solution. We still expose λ for diagnostics.
        x: lambda,
    }
}

/// Primal solution corresponding to a GIS run. Re-runs the final primal
/// computation; GIS callers who need `p` should use [`gis_with_primal`].
pub fn gis_with_primal(
    dual: &MaxEntDual,
    total_mass: f64,
    cfg: &ScalingConfig,
) -> (Solution, Vec<f64>) {
    gis_with_primal_from(dual, total_mass, cfg, &vec![0.0; dual.num_constraints()])
}

/// [`gis_with_primal`] warm-started from the dual point `lambda0` (see
/// [`gis_from`]).
pub fn gis_with_primal_from(
    dual: &MaxEntDual,
    total_mass: f64,
    cfg: &ScalingConfig,
    lambda0: &[f64],
) -> (Solution, Vec<f64>) {
    // GIS's slack multiplier is internal, so recompute the primal by
    // rerunning; to avoid duplicated logic we simply run once and rebuild p
    // from the stored λ plus a recomputed slack pass. For simplicity and
    // correctness we run the full iteration again capturing p.
    let sol = gis_from(dual, total_mass, cfg, lambda0);
    // Rebuild p with a single extra fixed-point pass over the slack feature:
    let a = dual.matrix();
    let n = a.ncols();
    let w = a.nrows();
    let mut colsum = vec![0.0f64; n];
    for r in 0..w {
        for (i, v) in a.row(r) {
            colsum[i] += v;
        }
    }
    let f_max = colsum.iter().fold(0.0f64, |m, &v| m.max(v));
    let mut t = vec![0.0; n];
    a.matvec_transpose(&sol.x, &mut t);
    // Recover λ_slack by matching total mass: Σ exp(t_i + λs·(F−cs_i) − 1) = mass.
    // One-dimensional monotone equation solved by bisection.
    let use_slack = colsum.iter().any(|&v| (f_max - v).abs() > 1e-12);
    let mass_at = |ls: f64| -> f64 {
        t.iter()
            .zip(&colsum)
            .map(|(&ti, &cs)| (ti + ls * (f_max - cs) - 1.0).exp())
            .sum()
    };
    let lambda_slack = if use_slack {
        let (mut lo, mut hi) = (-100.0f64, 100.0f64);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if mass_at(mid) > total_mass {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        0.5 * (lo + hi)
    } else {
        0.0
    };
    let p: Vec<f64> = t
        .iter()
        .zip(&colsum)
        .map(|(&ti, &cs)| (ti + lambda_slack * (f_max - cs) - 1.0).exp())
        .collect();
    (sol, p)
}

/// Improved Iterative Scaling.
pub fn iis(dual: &MaxEntDual, cfg: &ScalingConfig) -> Solution {
    iis_from(dual, cfg, &vec![0.0; dual.num_constraints()])
}

/// [`iis`] warm-started from the dual point `lambda0` instead of the
/// origin — the incremental-session entry point (see [`gis_from`]).
///
/// # Panics
/// Panics if `lambda0.len() != dual.num_constraints()`.
pub fn iis_from(dual: &MaxEntDual, cfg: &ScalingConfig, lambda0: &[f64]) -> Solution {
    let a = dual.matrix();
    check_nonnegative(a);
    let start = Instant::now(); // pm-audit: allow(determinism, reason = "wall-clock telemetry only: feeds solve/build duration stats, never the estimate bytes")
    let n = a.ncols();
    let w = a.nrows();

    // f#(i) = Σⱼ fⱼ(i) — total feature mass per term.
    let mut fsharp = vec![0.0f64; n];
    for r in 0..w {
        for (i, v) in a.row(r) {
            fsharp[i] += v;
        }
    }
    assert!(
        fsharp.iter().all(|&v| v > 0.0),
        "every term must appear in at least one constraint"
    );

    assert_eq!(lambda0.len(), w, "warm-start dual dimension mismatch");
    let mut lambda = lambda0.to_vec();
    let mut fn_evals = 0usize;
    let mut stop = StopReason::MaxIterations;
    let mut iterations = 0usize;
    let mut residual = f64::INFINITY;

    for iter in 0..cfg.max_iterations {
        iterations = iter;
        let p = dual.primal(&lambda);
        fn_evals += 1;
        let mut ap = vec![0.0; w];
        a.matvec(&p, &mut ap);
        residual = ap
            .iter()
            .zip(dual.targets())
            .fold(0.0f64, |m, (a, c)| m.max((a - c).abs()));
        if residual <= cfg.tolerance {
            stop = StopReason::Converged;
            break;
        }
        // For each constraint j, solve Σᵢ fⱼ(i)·pᵢ·exp(δⱼ·f#(i)) = cⱼ by
        // 1-D Newton with bisection fallback (the LHS is increasing in δⱼ).
        for (j, lam) in lambda.iter_mut().enumerate() {
            let c = dual.targets()[j];
            if c <= 0.0 {
                continue;
            }
            let entries: Vec<(f64, f64)> = a
                .row(j)
                .map(|(i, fv)| (fv * p[i], fsharp[i]))
                .collect();
            if entries.is_empty() {
                continue;
            }
            let h = |delta: f64| -> (f64, f64) {
                let mut val = 0.0;
                let mut dv = 0.0;
                for &(w_i, fs) in &entries {
                    let e = (delta * fs).exp();
                    val += w_i * e;
                    dv += w_i * fs * e;
                }
                (val - c, dv)
            };
            let mut delta = 0.0f64;
            let (mut lo, mut hi) = (-50.0f64, 50.0f64);
            for _ in 0..50 {
                let (val, dv) = h(delta);
                if val.abs() < 1e-14 {
                    break;
                }
                if val > 0.0 {
                    hi = hi.min(delta);
                } else {
                    lo = lo.max(delta);
                }
                let step = if dv > 0.0 { delta - val / dv } else { f64::NAN };
                delta = if step.is_finite() && step > lo && step < hi {
                    step
                } else {
                    0.5 * (lo + hi)
                };
            }
            *lam += delta;
        }
        iterations = iter + 1;
    }

    let p = dual.primal(&lambda);
    Solution {
        value: p.iter().sum::<f64>() - pm_linalg::dot(dual.targets(), &lambda),
        stats: SolveStats {
            iterations,
            fn_evals,
            elapsed: start.elapsed(),
            final_residual: residual,
            stop,
        },
        x: lambda,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lbfgs::Lbfgs;
    use pm_linalg::CsrMatrix;

    fn independence_dual() -> MaxEntDual {
        let a = CsrMatrix::from_rows(
            4,
            &[
                vec![(0, 1.0), (1, 1.0)],
                vec![(2, 1.0), (3, 1.0)],
                vec![(0, 1.0), (2, 1.0)],
                vec![(1, 1.0), (3, 1.0)],
            ],
        );
        MaxEntDual::new(a, vec![0.3, 0.7, 0.4, 0.6])
    }

    #[test]
    fn iis_matches_analytic_independence() {
        let dual = independence_dual();
        let sol = iis(&dual, &ScalingConfig::default());
        assert!(sol.stats.converged(), "{:?}", sol.stats);
        let p = dual.primal(&sol.x);
        let want = [0.12, 0.18, 0.28, 0.42];
        for (got, want) in p.iter().zip(want) {
            assert!((got - want).abs() < 1e-6, "{p:?}");
        }
    }

    #[test]
    fn gis_matches_analytic_independence() {
        let dual = independence_dual();
        let (sol, p) = gis_with_primal(&dual, 1.0, &ScalingConfig::default());
        assert!(sol.stats.converged(), "{:?}", sol.stats);
        let want = [0.12, 0.18, 0.28, 0.42];
        for (got, want) in p.iter().zip(want) {
            assert!((got - want).abs() < 1e-6, "{p:?}");
        }
    }

    #[test]
    fn gis_without_slack_when_sums_constant() {
        // Single normalisation constraint: feature sums are constant (=1).
        let a = CsrMatrix::from_rows(3, &[vec![(0, 1.0), (1, 1.0), (2, 1.0)]]);
        let dual = MaxEntDual::new(a, vec![0.9]);
        let (sol, p) = gis_with_primal(&dual, 0.9, &ScalingConfig::default());
        assert!(sol.stats.converged());
        for v in &p {
            assert!((v - 0.3).abs() < 1e-8);
        }
    }

    #[test]
    fn all_three_solvers_agree_on_pinned_problem() {
        let a = CsrMatrix::from_rows(
            3,
            &[
                vec![(0, 1.0), (1, 1.0), (2, 1.0)],
                vec![(0, 1.0)],
            ],
        );
        let dual = MaxEntDual::new(a, vec![1.0, 0.5]);
        let lb = Lbfgs::default().minimize(&dual, &[0.0, 0.0]);
        let p_lb = dual.primal(&lb.x);
        let ii = iis(&dual, &ScalingConfig::default());
        let p_ii = dual.primal(&ii.x);
        let (_, p_gis) = gis_with_primal(&dual, 1.0, &ScalingConfig::default());
        for i in 0..3 {
            assert!((p_lb[i] - p_ii[i]).abs() < 1e-6, "lbfgs {p_lb:?} vs iis {p_ii:?}");
            assert!((p_lb[i] - p_gis[i]).abs() < 1e-6, "lbfgs {p_lb:?} vs gis {p_gis:?}");
        }
    }

    /// Warm-starting from an already-converged dual point is a no-op-cheap
    /// restart: both scaling solvers accept the seed and converge in (far)
    /// fewer iterations than the cold run, to the same primal.
    #[test]
    fn warm_start_resumes_from_previous_dual() {
        let dual = independence_dual();
        let cfg = ScalingConfig::default();
        let cold = iis(&dual, &cfg);
        assert!(cold.stats.converged());
        let warm = iis_from(&dual, &cfg, &cold.x);
        assert!(warm.stats.converged());
        assert!(
            warm.stats.iterations <= 1,
            "warm IIS restart took {} iterations",
            warm.stats.iterations
        );
        let (cold_gis, p_cold) = gis_with_primal(&dual, 1.0, &cfg);
        assert!(cold_gis.stats.converged());
        let (warm_gis, p_warm) = gis_with_primal_from(&dual, 1.0, &cfg, &cold_gis.x);
        assert!(warm_gis.stats.converged());
        assert!(
            warm_gis.stats.iterations < cold_gis.stats.iterations,
            "warm GIS ({}) should beat cold GIS ({})",
            warm_gis.stats.iterations,
            cold_gis.stats.iterations
        );
        for (a, b) in p_cold.iter().zip(&p_warm) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "warm-start dual dimension mismatch")]
    fn warm_start_dimension_checked() {
        let dual = independence_dual();
        iis_from(&dual, &ScalingConfig::default(), &[0.0; 2]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_features_rejected() {
        let a = CsrMatrix::from_rows(1, &[vec![(0, -1.0)]]);
        let dual = MaxEntDual::new(a, vec![1.0]);
        iis(&dual, &ScalingConfig::default());
    }
}
