//! Steepest descent with strong-Wolfe line search.
//!
//! Kept as the simplest baseline in the Malouf-style solver comparison
//! (`bench_solvers`); the paper cites Malouf \[18\] for exactly this kind of
//! algorithm shoot-out.

use std::time::Instant;

use crate::line_search::{strong_wolfe, WolfeParams};
use crate::objective::Objective;
use crate::stats::{Solution, SolveStats, StopReason};
use pm_linalg::{copy, dot, norm_inf};

/// Steepest-descent configuration.
#[derive(Debug, Clone)]
pub struct GradientDescentConfig {
    /// Convergence tolerance on `‖∇f‖∞`.
    pub tolerance: f64,
    /// Iteration budget (steepest descent needs many on ill-conditioned
    /// problems, which is the point of the comparison).
    pub max_iterations: usize,
    /// Line-search parameters.
    pub wolfe: WolfeParams,
}

impl Default for GradientDescentConfig {
    fn default() -> Self {
        Self {
            tolerance: 1e-8,
            max_iterations: 10_000,
            wolfe: WolfeParams { c2: 0.4, ..Default::default() },
        }
    }
}

/// Minimises `obj` from `x0` by steepest descent.
pub fn gradient_descent(
    obj: &dyn Objective,
    x0: &[f64],
    cfg: &GradientDescentConfig,
) -> Solution {
    let n = obj.dim();
    let start = Instant::now(); // pm-audit: allow(determinism, reason = "wall-clock telemetry only: feeds solve/build duration stats, never the estimate bytes")
    let mut x = x0.to_vec();
    let mut grad = vec![0.0; n];
    let mut f = obj.eval(&x, &mut grad);
    let mut fn_evals = 1usize;
    let mut d = vec![0.0; n];
    let mut x_new = vec![0.0; n];
    let mut grad_new = vec![0.0; n];
    let mut stop = StopReason::MaxIterations;
    let mut iterations = 0usize;

    for iter in 0..cfg.max_iterations {
        iterations = iter;
        if norm_inf(&grad) <= cfg.tolerance {
            stop = StopReason::Converged;
            break;
        }
        copy(&grad, &mut d);
        pm_linalg::scale(-1.0, &mut d);
        let g0d = dot(&grad, &d);
        let ls = strong_wolfe(obj, &x, &d, f, g0d, &cfg.wolfe, &mut x_new, &mut grad_new);
        fn_evals += ls.evals;
        if !ls.success {
            // Near the optimum the Armijo test can fail purely from f64
            // rounding; accept if the gradient is already small.
            stop = if norm_inf(&grad) <= cfg.tolerance.max(1e-6) {
                StopReason::Converged
            } else {
                StopReason::LineSearchFailed
            };
            break;
        }
        std::mem::swap(&mut x, &mut x_new);
        std::mem::swap(&mut grad, &mut grad_new);
        f = ls.f;
        iterations = iter + 1;
    }
    if stop == StopReason::MaxIterations && norm_inf(&grad) <= cfg.tolerance {
        stop = StopReason::Converged;
    }

    Solution {
        value: f,
        stats: SolveStats {
            iterations,
            fn_evals,
            elapsed: start.elapsed(),
            final_residual: norm_inf(&grad),
            stop,
        },
        x,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::DiagonalQuadratic;

    #[test]
    fn solves_well_conditioned_quadratic() {
        let q = DiagonalQuadratic { d: vec![1.0, 2.0], b: vec![3.0, 4.0] };
        let sol = gradient_descent(&q, &[0.0, 0.0], &GradientDescentConfig::default());
        assert!(sol.stats.converged());
        for (got, want) in sol.x.iter().zip(q.minimizer()) {
            assert!((got - want).abs() < 1e-6);
        }
    }

    #[test]
    fn slower_than_lbfgs_on_ill_conditioned_problem() {
        // The defining weakness steepest descent exhibits in Malouf's
        // comparison: iteration count scales with conditioning.
        let q = DiagonalQuadratic { d: vec![1.0, 1000.0], b: vec![1.0, 1.0] };
        let gd = gradient_descent(&q, &[0.0, 0.0], &GradientDescentConfig::default());
        let lb = crate::lbfgs::Lbfgs::default().minimize(&q, &[0.0, 0.0]);
        assert!(gd.stats.converged() && lb.stats.converged());
        assert!(
            gd.stats.iterations > lb.stats.iterations,
            "gd {} vs lbfgs {}",
            gd.stats.iterations,
            lb.stats.iterations
        );
    }
}
