//! Limited-memory BFGS (Nocedal & Wright, Algorithm 7.5).
//!
//! This is the paper's solver of choice: "we apply the method of Lagrange
//! multipliers to convert the constrained optimization problem to an
//! unconstrained optimization problem, which is then solved using LBFGS"
//! (Section 7). The implementation is a faithful from-scratch port of the
//! standard two-loop recursion with a strong-Wolfe line search.

use std::time::Instant;

use crate::line_search::{strong_wolfe, WolfeParams};
use crate::objective::Objective;
use crate::stats::{Solution, SolveStats, StopReason};
use pm_linalg::{copy, dot, norm_inf};

/// LBFGS configuration.
#[derive(Debug, Clone)]
pub struct LbfgsConfig {
    /// History size `m` (number of stored correction pairs). Nocedal's
    /// software defaults to 3–7; we default to 7.
    pub history: usize,
    /// Convergence tolerance on `‖∇f‖∞`.
    pub tolerance: f64,
    /// Iteration budget.
    pub max_iterations: usize,
    /// Line-search parameters.
    pub wolfe: WolfeParams,
}

impl Default for LbfgsConfig {
    fn default() -> Self {
        Self {
            history: 7,
            tolerance: 1e-8,
            max_iterations: 500,
            wolfe: WolfeParams::default(),
        }
    }
}

/// The LBFGS solver.
#[derive(Debug, Clone, Default)]
pub struct Lbfgs {
    /// Configuration used for [`Lbfgs::minimize`].
    pub config: LbfgsConfig,
}

impl Lbfgs {
    /// Creates a solver with the given configuration.
    pub fn new(config: LbfgsConfig) -> Self {
        Self { config }
    }

    /// Minimises `obj` starting from `x0`.
    pub fn minimize(&self, obj: &dyn Objective, x0: &[f64]) -> Solution {
        let n = obj.dim();
        assert_eq!(x0.len(), n, "x0 dimension mismatch");
        let cfg = &self.config;
        let start = Instant::now(); // pm-audit: allow(determinism, reason = "wall-clock telemetry only: feeds solve/build duration stats, never the estimate bytes")

        let mut x = x0.to_vec();
        let mut grad = vec![0.0; n];
        let mut f = obj.eval(&x, &mut grad);
        let mut fn_evals = 1usize;

        // Correction-pair ring buffers.
        let m = cfg.history.max(1);
        let mut s_list: Vec<Vec<f64>> = Vec::with_capacity(m);
        let mut y_list: Vec<Vec<f64>> = Vec::with_capacity(m);
        let mut rho_list: Vec<f64> = Vec::with_capacity(m);

        let mut d = vec![0.0; n];
        let mut x_new = vec![0.0; n];
        let mut grad_new = vec![0.0; n];
        let mut alpha_buf = vec![0.0; m];

        let mut stop = StopReason::MaxIterations;
        let mut iterations = 0usize;

        for iter in 0..cfg.max_iterations {
            iterations = iter;
            if norm_inf(&grad) <= cfg.tolerance {
                stop = StopReason::Converged;
                break;
            }

            // Two-loop recursion: d = −H·∇f.
            copy(&grad, &mut d);
            let k = s_list.len();
            for i in (0..k).rev() {
                let a = rho_list[i] * dot(&s_list[i], &d);
                alpha_buf[i] = a;
                pm_linalg::axpy(-a, &y_list[i], &mut d);
            }
            // Initial Hessian scaling γ = sᵀy / yᵀy (N&W Eq. 7.20).
            if k > 0 {
                let last = k - 1;
                let yy = dot(&y_list[last], &y_list[last]);
                if yy > 0.0 {
                    let gamma = dot(&s_list[last], &y_list[last]) / yy;
                    pm_linalg::scale(gamma, &mut d);
                }
            }
            for i in 0..k {
                let b = rho_list[i] * dot(&y_list[i], &d);
                pm_linalg::axpy(alpha_buf[i] - b, &s_list[i], &mut d);
            }
            pm_linalg::scale(-1.0, &mut d);

            let mut g0d = dot(&grad, &d);
            if g0d >= 0.0 {
                // Stale curvature produced a non-descent direction; restart
                // from steepest descent.
                s_list.clear();
                y_list.clear();
                rho_list.clear();
                copy(&grad, &mut d);
                pm_linalg::scale(-1.0, &mut d);
                g0d = dot(&grad, &d);
            }

            let ls = strong_wolfe(
                obj, &x, &d, f, g0d, &cfg.wolfe, &mut x_new, &mut grad_new,
            );
            fn_evals += ls.evals;
            if !ls.success {
                stop = if norm_inf(&grad) <= cfg.tolerance.max(1e-6) {
                    StopReason::Converged
                } else {
                    StopReason::LineSearchFailed
                };
                break;
            }

            // Store the correction pair if curvature is positive.
            let mut s = vec![0.0; n];
            let mut yv = vec![0.0; n];
            for i in 0..n {
                s[i] = x_new[i] - x[i];
                yv[i] = grad_new[i] - grad[i];
            }
            let sy = dot(&s, &yv);
            if sy > 1e-12 * pm_linalg::norm2(&s) * pm_linalg::norm2(&yv) {
                if s_list.len() == m {
                    s_list.remove(0);
                    y_list.remove(0);
                    rho_list.remove(0);
                }
                rho_list.push(1.0 / sy);
                s_list.push(s);
                y_list.push(yv);
            }

            std::mem::swap(&mut x, &mut x_new);
            std::mem::swap(&mut grad, &mut grad_new);
            f = ls.f;
            iterations = iter + 1;
        }

        if stop == StopReason::MaxIterations && norm_inf(&grad) <= cfg.tolerance {
            stop = StopReason::Converged;
        }

        Solution {
            value: f,
            stats: SolveStats {
                iterations,
                fn_evals,
                elapsed: start.elapsed(),
                final_residual: norm_inf(&grad),
                stop,
            },
            x,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{DiagonalQuadratic, Rosenbrock};

    #[test]
    fn solves_quadratic_exactly() {
        let q = DiagonalQuadratic {
            d: vec![1.0, 10.0, 100.0],
            b: vec![1.0, -2.0, 3.0],
        };
        let sol = Lbfgs::default().minimize(&q, &[0.0; 3]);
        assert!(sol.stats.converged(), "{:?}", sol.stats);
        for (got, want) in sol.x.iter().zip(q.minimizer()) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    }

    #[test]
    fn solves_rosenbrock_from_standard_start() {
        let r = Rosenbrock { n: 2 };
        let cfg = LbfgsConfig { max_iterations: 2000, ..Default::default() };
        let sol = Lbfgs::new(cfg).minimize(&r, &[-1.2, 1.0]);
        assert!(sol.stats.converged(), "{:?}", sol.stats);
        assert!((sol.x[0] - 1.0).abs() < 1e-5);
        assert!((sol.x[1] - 1.0).abs() < 1e-5);
        assert!(sol.value < 1e-10);
    }

    #[test]
    fn solves_higher_dimensional_rosenbrock() {
        let r = Rosenbrock { n: 10 };
        let cfg = LbfgsConfig { max_iterations: 5000, tolerance: 1e-7, ..Default::default() };
        let sol = Lbfgs::new(cfg).minimize(&r, &[0.0; 10]);
        assert!(sol.stats.converged(), "{:?}", sol.stats);
        for v in &sol.x {
            assert!((v - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn zero_iterations_when_starting_at_optimum() {
        let q = DiagonalQuadratic { d: vec![1.0], b: vec![0.0] };
        let sol = Lbfgs::default().minimize(&q, &[0.0]);
        assert!(sol.stats.converged());
        assert_eq!(sol.stats.iterations, 0);
    }

    #[test]
    fn respects_iteration_budget() {
        let r = Rosenbrock { n: 2 };
        let cfg = LbfgsConfig { max_iterations: 2, ..Default::default() };
        let sol = Lbfgs::new(cfg).minimize(&r, &[-1.2, 1.0]);
        assert!(sol.stats.iterations <= 2);
        assert!(!sol.stats.converged());
    }
}
