//! Nonlinear conjugate gradient (Fletcher–Reeves and Polak–Ribière).
//!
//! Malouf's comparison \[18\], which the paper cites to justify LBFGS, also
//! benchmarks nonlinear CG variants; this module completes the solver
//! shoot-out in `bench_solvers`.

use std::time::Instant;

use crate::line_search::{strong_wolfe, WolfeParams};
use crate::objective::Objective;
use crate::stats::{Solution, SolveStats, StopReason};
use pm_linalg::{copy, dot, norm_inf};

/// The β update formula.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CgVariant {
    /// Fletcher–Reeves: `β = gᵀg / g₋ᵀg₋`.
    FletcherReeves,
    /// Polak–Ribière (with the standard `max(β, 0)` restart guard).
    #[default]
    PolakRibiere,
}

/// CG configuration.
#[derive(Debug, Clone)]
pub struct CgConfig {
    /// β formula.
    pub variant: CgVariant,
    /// Convergence tolerance on `‖∇f‖∞`.
    pub tolerance: f64,
    /// Iteration budget.
    pub max_iterations: usize,
    /// Restart to steepest descent every `restart_every` iterations
    /// (classic n-step restart; 0 disables).
    pub restart_every: usize,
    /// Line-search parameters. CG needs a tighter curvature constant than
    /// quasi-Newton methods (c2 ≈ 0.1–0.4) to keep directions descending.
    pub wolfe: WolfeParams,
}

impl Default for CgConfig {
    fn default() -> Self {
        Self {
            variant: CgVariant::default(),
            tolerance: 1e-8,
            max_iterations: 10_000,
            restart_every: 0,
            wolfe: WolfeParams { c2: 0.2, ..Default::default() },
        }
    }
}

/// Minimises `obj` from `x0` with nonlinear CG.
pub fn conjugate_gradient(obj: &dyn Objective, x0: &[f64], cfg: &CgConfig) -> Solution {
    let n = obj.dim();
    let start = Instant::now(); // pm-audit: allow(determinism, reason = "wall-clock telemetry only: feeds solve/build duration stats, never the estimate bytes")
    let mut x = x0.to_vec();
    let mut grad = vec![0.0; n];
    let mut f = obj.eval(&x, &mut grad);
    let mut fn_evals = 1usize;

    let mut d: Vec<f64> = grad.iter().map(|g| -g).collect();
    let mut grad_prev = vec![0.0; n];
    let mut x_new = vec![0.0; n];
    let mut grad_new = vec![0.0; n];
    let mut stop = StopReason::MaxIterations;
    let mut iterations = 0usize;

    for iter in 0..cfg.max_iterations {
        iterations = iter;
        if norm_inf(&grad) <= cfg.tolerance {
            stop = StopReason::Converged;
            break;
        }
        let mut g0d = dot(&grad, &d);
        if g0d >= 0.0 {
            // Restart on non-descent direction.
            for i in 0..n {
                d[i] = -grad[i];
            }
            g0d = dot(&grad, &d);
        }
        let ls = strong_wolfe(obj, &x, &d, f, g0d, &cfg.wolfe, &mut x_new, &mut grad_new);
        fn_evals += ls.evals;
        if !ls.success {
            stop = if norm_inf(&grad) <= cfg.tolerance.max(1e-6) {
                StopReason::Converged
            } else {
                StopReason::LineSearchFailed
            };
            break;
        }

        copy(&grad, &mut grad_prev);
        std::mem::swap(&mut x, &mut x_new);
        std::mem::swap(&mut grad, &mut grad_new);
        f = ls.f;

        // β update.
        let gg_prev = dot(&grad_prev, &grad_prev);
        let beta = if gg_prev <= 0.0 {
            0.0
        } else {
            match cfg.variant {
                CgVariant::FletcherReeves => dot(&grad, &grad) / gg_prev,
                CgVariant::PolakRibiere => {
                    let mut num = 0.0;
                    for i in 0..n {
                        num += grad[i] * (grad[i] - grad_prev[i]);
                    }
                    (num / gg_prev).max(0.0)
                }
            }
        };
        let restart = cfg.restart_every > 0 && (iter + 1) % cfg.restart_every == 0;
        for i in 0..n {
            d[i] = -grad[i] + if restart { 0.0 } else { beta * d[i] };
        }
        iterations = iter + 1;
    }
    if stop == StopReason::MaxIterations && norm_inf(&grad) <= cfg.tolerance {
        stop = StopReason::Converged;
    }

    Solution {
        value: f,
        stats: SolveStats {
            iterations,
            fn_evals,
            elapsed: start.elapsed(),
            final_residual: norm_inf(&grad),
            stop,
        },
        x,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxent::MaxEntDual;
    use crate::objective::{DiagonalQuadratic, Rosenbrock};
    use pm_linalg::CsrMatrix;

    #[test]
    fn both_variants_solve_quadratic() {
        let q = DiagonalQuadratic { d: vec![1.0, 20.0, 5.0], b: vec![1.0, 2.0, -1.0] };
        for variant in [CgVariant::FletcherReeves, CgVariant::PolakRibiere] {
            let sol = conjugate_gradient(
                &q,
                &[0.0; 3],
                &CgConfig { variant, ..Default::default() },
            );
            assert!(sol.stats.converged(), "{variant:?}: {:?}", sol.stats);
            for (got, want) in sol.x.iter().zip(q.minimizer()) {
                assert!((got - want).abs() < 1e-5, "{variant:?}");
            }
        }
    }

    #[test]
    fn polak_ribiere_solves_rosenbrock() {
        let r = Rosenbrock { n: 2 };
        let sol = conjugate_gradient(&r, &[-1.2, 1.0], &CgConfig::default());
        assert!(sol.stats.converged(), "{:?}", sol.stats);
        assert!((sol.x[0] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn cg_matches_lbfgs_on_maxent_dual() {
        let a = CsrMatrix::from_rows(
            4,
            &[
                vec![(0, 1.0), (1, 1.0)],
                vec![(2, 1.0), (3, 1.0)],
                vec![(0, 1.0), (2, 1.0)],
                vec![(1, 1.0), (3, 1.0)],
            ],
        );
        let dual = MaxEntDual::new(a, vec![0.3, 0.7, 0.4, 0.6]);
        let sol = conjugate_gradient(&dual, &[0.0; 4], &CgConfig::default());
        assert!(sol.stats.converged());
        let p = dual.primal(&sol.x);
        let want = [0.12, 0.18, 0.28, 0.42];
        for (got, want) in p.iter().zip(want) {
            assert!((got - want).abs() < 1e-6);
        }
    }

    #[test]
    fn periodic_restart_still_converges() {
        let q = DiagonalQuadratic { d: vec![1.0, 100.0], b: vec![1.0, 1.0] };
        let cfg = CgConfig { restart_every: 2, ..Default::default() };
        let sol = conjugate_gradient(&q, &[0.0, 0.0], &cfg);
        assert!(sol.stats.converged());
    }
}
