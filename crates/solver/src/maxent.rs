//! The maximum-entropy Lagrange dual.
//!
//! The primal problem (Definition 3.1 of the paper) is
//!
//! ```text
//! maximize  H(p) = −Σᵢ pᵢ log pᵢ
//! subject to A p = c,   p ≥ 0
//! ```
//!
//! where `i` ranges over admissible probability terms `P(q, s, b)` and the
//! rows of `A` are the ME constraints (invariants + background knowledge).
//! Stationarity of the Lagrangian gives the exponential-family form
//! `pᵢ(λ) = exp(aᵢᵀλ − 1)` (`aᵢ` = column `i` of `A`), and substituting back
//! yields the smooth convex dual
//!
//! ```text
//! g(λ) = Σᵢ exp(aᵢᵀλ − 1) − cᵀλ,    ∇g(λ) = A·p(λ) − c.
//! ```
//!
//! Minimising `g` is unconstrained; any of the crate's solvers applies. The
//! non-negativity constraint is automatically strictly satisfied by the
//! exponential form, which is why constraints forcing terms to zero must be
//! *eliminated* beforehand (the core crate's preprocessor does this).

use crate::objective::Objective;
use pm_linalg::CsrMatrix;

/// The dual objective for a maxent instance `(A, c)`.
#[derive(Debug, Clone)]
pub struct MaxEntDual {
    a: CsrMatrix,
    c: Vec<f64>,
}

impl MaxEntDual {
    /// Creates the dual for constraint matrix `a` (one row per constraint)
    /// and right-hand side `c`.
    ///
    /// # Panics
    /// Panics if `c.len() != a.nrows()`.
    pub fn new(a: CsrMatrix, c: Vec<f64>) -> Self {
        assert_eq!(a.nrows(), c.len(), "constraint count mismatch");
        Self { a, c }
    }

    /// The constraint matrix.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.a
    }

    /// The right-hand side.
    pub fn targets(&self) -> &[f64] {
        &self.c
    }

    /// Number of dual variables (= constraints).
    pub fn num_constraints(&self) -> usize {
        self.a.nrows()
    }

    /// Number of primal variables (= probability terms).
    pub fn num_terms(&self) -> usize {
        self.a.ncols()
    }

    /// The primal solution `pᵢ(λ) = exp(aᵢᵀλ − 1)` for dual point `λ`.
    pub fn primal(&self, lambda: &[f64]) -> Vec<f64> {
        let mut t = vec![0.0; self.a.ncols()];
        self.a.matvec_transpose(lambda, &mut t);
        for v in &mut t {
            *v = (*v - 1.0).exp();
        }
        t
    }

    /// Constraint residual `‖A p − c‖∞` for a primal point `p`.
    pub fn residual(&self, p: &[f64]) -> f64 {
        let mut ap = vec![0.0; self.a.nrows()];
        self.a.matvec(p, &mut ap);
        ap.iter()
            .zip(&self.c)
            .fold(0.0f64, |m, (a, c)| m.max((a - c).abs()))
    }

    /// Entropy `−Σ pᵢ log pᵢ` of a primal point (0·log0 := 0).
    pub fn entropy(p: &[f64]) -> f64 {
        p.iter()
            .map(|&v| if v > 0.0 { -v * v.ln() } else { 0.0 })
            .sum()
    }
}

impl Objective for MaxEntDual {
    fn dim(&self) -> usize {
        self.a.nrows()
    }

    fn eval(&self, lambda: &[f64], grad: &mut [f64]) -> f64 {
        // p = exp(Aᵀλ − 1); value = Σp − cᵀλ; grad = A p − c.
        let p = self.primal(lambda);
        let sum_p: f64 = p.iter().sum();
        self.a.matvec(&p, grad);
        for (g, c) in grad.iter_mut().zip(&self.c) {
            *g -= c;
        }
        sum_p - pm_linalg::dot(&self.c, lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lbfgs::Lbfgs;
    use pm_linalg::Triplet;

    /// Three terms, single normalisation constraint p₁+p₂+p₃ = 1: the maxent
    /// solution is uniform (1/3 each).
    #[test]
    fn uniform_under_normalization_only() {
        let a = CsrMatrix::from_rows(3, &[vec![(0, 1.0), (1, 1.0), (2, 1.0)]]);
        let dual = MaxEntDual::new(a, vec![1.0]);
        let sol = Lbfgs::default().minimize(&dual, &[0.0]);
        assert!(sol.stats.converged());
        let p = dual.primal(&sol.x);
        for v in &p {
            assert!((v - 1.0 / 3.0).abs() < 1e-8, "{p:?}");
        }
        assert!(dual.residual(&p) < 1e-8);
    }

    /// Two blocks with separate normalisations: uniform within each block.
    #[test]
    fn blockwise_uniform() {
        let a = CsrMatrix::from_rows(
            5,
            &[
                vec![(0, 1.0), (1, 1.0)],
                vec![(2, 1.0), (3, 1.0), (4, 1.0)],
            ],
        );
        let dual = MaxEntDual::new(a, vec![0.4, 0.6]);
        let sol = Lbfgs::default().minimize(&dual, &[0.0, 0.0]);
        assert!(sol.stats.converged());
        let p = dual.primal(&sol.x);
        assert!((p[0] - 0.2).abs() < 1e-8);
        assert!((p[1] - 0.2).abs() < 1e-8);
        for v in &p[2..] {
            assert!((v - 0.2).abs() < 1e-8);
        }
    }

    /// 2×2 contingency table with both row and column marginals fixed: the
    /// maxent solution is the independence (outer-product) table — the fact
    /// the paper's Appendix B (consistency theorem) proves.
    #[test]
    fn independence_table() {
        // terms: (r0c0, r0c1, r1c0, r1c1)
        let a = CsrMatrix::from_rows(
            4,
            &[
                vec![(0, 1.0), (1, 1.0)],         // row 0 marginal = 0.3
                vec![(2, 1.0), (3, 1.0)],         // row 1 marginal = 0.7
                vec![(0, 1.0), (2, 1.0)],         // col 0 marginal = 0.4
                vec![(1, 1.0), (3, 1.0)],         // col 1 marginal = 0.6
            ],
        );
        let dual = MaxEntDual::new(a, vec![0.3, 0.7, 0.4, 0.6]);
        let sol = Lbfgs::default().minimize(&dual, &[0.0; 4]);
        assert!(sol.stats.converged());
        let p = dual.primal(&sol.x);
        let want = [0.3 * 0.4, 0.3 * 0.6, 0.7 * 0.4, 0.7 * 0.6];
        for (got, want) in p.iter().zip(want) {
            assert!((got - want).abs() < 1e-7, "{p:?}");
        }
    }

    /// Adding an informative constraint moves the solution away from
    /// uniform exactly as specified.
    #[test]
    fn pinning_constraint_respected() {
        let a = CsrMatrix::from_rows(
            3,
            &[
                vec![(0, 1.0), (1, 1.0), (2, 1.0)], // total = 1
                vec![(0, 1.0)],                     // p0 = 0.5
            ],
        );
        let dual = MaxEntDual::new(a, vec![1.0, 0.5]);
        let sol = Lbfgs::default().minimize(&dual, &[0.0, 0.0]);
        assert!(sol.stats.converged());
        let p = dual.primal(&sol.x);
        assert!((p[0] - 0.5).abs() < 1e-8);
        assert!((p[1] - 0.25).abs() < 1e-8);
        assert!((p[2] - 0.25).abs() < 1e-8);
    }

    #[test]
    fn entropy_helper() {
        assert_eq!(MaxEntDual::entropy(&[0.0, 0.0]), 0.0);
        let h = MaxEntDual::entropy(&[0.5, 0.5]);
        assert!((h - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "constraint count mismatch")]
    fn mismatched_targets_panic() {
        let a = CsrMatrix::from_triplets(1, 1, &[Triplet { row: 0, col: 0, val: 1.0 }]);
        MaxEntDual::new(a, vec![1.0, 2.0]);
    }
}
