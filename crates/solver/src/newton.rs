//! Damped Newton's method for the maxent dual (small problems).
//!
//! The dual Hessian is `∇²g(λ) = A·diag(p(λ))·Aᵀ`, a `w × w` positive
//! semi-definite matrix. For the per-bucket subproblems of Privacy-MaxEnt
//! (`w ≤ g + h ≈ 10`) a dense Cholesky factorisation is cheap, and Newton
//! converges in a handful of iterations. Listed by the paper alongside
//! steepest ascent and LBFGS as candidate solvers (Section 3.3).

use std::time::Instant;

use crate::line_search::{strong_wolfe, WolfeParams};
use crate::maxent::MaxEntDual;
use crate::objective::Objective;
use crate::stats::{Solution, SolveStats, StopReason};
use pm_linalg::{dot, norm_inf};

/// Newton configuration.
#[derive(Debug, Clone)]
pub struct NewtonConfig {
    /// Convergence tolerance on `‖∇g‖∞`.
    pub tolerance: f64,
    /// Iteration budget.
    pub max_iterations: usize,
    /// Levenberg-style damping added to the Hessian diagonal when the
    /// Cholesky factorisation fails (semi-definite Hessian).
    pub damping: f64,
}

impl Default for NewtonConfig {
    fn default() -> Self {
        Self { tolerance: 1e-10, max_iterations: 100, damping: 1e-10 }
    }
}

/// In-place dense Cholesky factorisation `M = L·Lᵀ` (lower triangle).
/// Returns `false` if the matrix is not positive definite.
// Inner loops read row `j` while updating row `i`; iterators would need
// split borrows for no readability gain.
#[allow(clippy::needless_range_loop)]
fn cholesky(m: &mut [Vec<f64>]) -> bool {
    let n = m.len();
    for j in 0..n {
        let mut d = m[j][j];
        for k in 0..j {
            d -= m[j][k] * m[j][k];
        }
        if d <= 0.0 {
            return false;
        }
        let d = d.sqrt();
        m[j][j] = d;
        for i in j + 1..n {
            let mut v = m[i][j];
            for k in 0..j {
                v -= m[i][k] * m[j][k];
            }
            m[i][j] = v / d;
        }
    }
    true
}

/// Solves `L·Lᵀ·x = b` given the Cholesky factor in the lower triangle.
fn cholesky_solve(l: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
    let n = l.len();
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut v = b[i];
        for k in 0..i {
            v -= l[i][k] * y[k];
        }
        y[i] = v / l[i][i];
    }
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut v = y[i];
        for k in i + 1..n {
            v -= l[k][i] * x[k];
        }
        x[i] = v / l[i][i];
    }
    x
}

/// Minimises the maxent dual with damped Newton steps.
pub fn newton_maxent(dual: &MaxEntDual, lambda0: &[f64], cfg: &NewtonConfig) -> Solution {
    let w = dual.num_constraints();
    assert_eq!(lambda0.len(), w);
    let start = Instant::now(); // pm-audit: allow(determinism, reason = "wall-clock telemetry only: feeds solve/build duration stats, never the estimate bytes")
    let a = dual.matrix();

    let mut lambda = lambda0.to_vec();
    let mut grad = vec![0.0; w];
    let mut f = dual.eval(&lambda, &mut grad);
    let mut fn_evals = 1usize;
    let mut stop = StopReason::MaxIterations;
    let mut iterations = 0usize;
    let mut x_new = vec![0.0; w];
    let mut grad_new = vec![0.0; w];

    for iter in 0..cfg.max_iterations {
        iterations = iter;
        if norm_inf(&grad) <= cfg.tolerance {
            stop = StopReason::Converged;
            break;
        }
        // Hessian H = A diag(p) Aᵀ, assembled as Σᵢ pᵢ·aᵢaᵢᵀ over the
        // column structure of A (aᵢ = column i).
        let p = dual.primal(&lambda);
        let mut h = vec![vec![0.0; w]; w];
        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); a.ncols()];
        for r in 0..w {
            for (i, v) in a.row(r) {
                cols[i].push((r, v));
            }
        }
        for (i, col) in cols.iter().enumerate() {
            let pi = p[i];
            if pi == 0.0 {
                continue;
            }
            for &(r, vr) in col {
                for &(s, vs) in col {
                    if s <= r {
                        h[r][s] += pi * vr * vs;
                    }
                }
            }
        }
        // Mirror the strict lower triangle; both triangles of `h` are
        // touched, so this stays an index loop.
        #[allow(clippy::needless_range_loop)]
        for r in 0..w {
            for s in 0..r {
                h[s][r] = h[r][s];
            }
        }
        // Damped Cholesky solve for d = −H⁻¹ ∇g.
        let mut damping = cfg.damping;
        let d = loop {
            let mut hd = h.clone();
            for (j, row) in hd.iter_mut().enumerate() {
                row[j] += damping;
            }
            if cholesky(&mut hd) {
                let mut d = cholesky_solve(&hd, &grad);
                for v in &mut d {
                    *v = -*v;
                }
                break d;
            }
            damping = (damping * 100.0).max(1e-12);
            if damping > 1e6 {
                // Hopeless Hessian; fall back to steepest descent.
                break grad.iter().map(|g| -g).collect();
            }
        };

        let g0d = dot(&grad, &d);
        let ls = strong_wolfe(
            dual,
            &lambda,
            &d,
            f,
            g0d,
            &WolfeParams::default(),
            &mut x_new,
            &mut grad_new,
        );
        fn_evals += ls.evals;
        if !ls.success {
            stop = StopReason::LineSearchFailed;
            break;
        }
        std::mem::swap(&mut lambda, &mut x_new);
        std::mem::swap(&mut grad, &mut grad_new);
        f = ls.f;
        iterations = iter + 1;
    }
    if stop == StopReason::MaxIterations && norm_inf(&grad) <= cfg.tolerance {
        stop = StopReason::Converged;
    }

    Solution {
        value: f,
        stats: SolveStats {
            iterations,
            fn_evals,
            elapsed: start.elapsed(),
            final_residual: norm_inf(&grad),
            stop,
        },
        x: lambda,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_linalg::CsrMatrix;

    #[test]
    fn cholesky_roundtrip() {
        let mut m = vec![vec![4.0, 2.0], vec![2.0, 3.0]];
        assert!(cholesky(&mut m));
        let x = cholesky_solve(&m, &[2.0, 1.0]);
        // Solve [4 2; 2 3] x = [2, 1]: x = [0.5, 0].
        assert!((x[0] - 0.5).abs() < 1e-12);
        assert!(x[1].abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let mut m = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        assert!(!cholesky(&mut m));
    }

    #[test]
    fn newton_matches_lbfgs_on_independence_table() {
        let a = CsrMatrix::from_rows(
            4,
            &[
                vec![(0, 1.0), (1, 1.0)],
                vec![(2, 1.0), (3, 1.0)],
                vec![(0, 1.0), (2, 1.0)],
                vec![(1, 1.0), (3, 1.0)],
            ],
        );
        let dual = MaxEntDual::new(a, vec![0.3, 0.7, 0.4, 0.6]);
        let sol = newton_maxent(&dual, &[0.0; 4], &NewtonConfig::default());
        assert!(sol.stats.converged(), "{:?}", sol.stats);
        let p = dual.primal(&sol.x);
        let want = [0.12, 0.18, 0.28, 0.42];
        for (got, want) in p.iter().zip(want) {
            assert!((got - want).abs() < 1e-8);
        }
        // Newton should need very few iterations.
        assert!(sol.stats.iterations <= 20);
    }

    #[test]
    fn newton_handles_redundant_constraints() {
        // Duplicate rows make the Hessian singular; damping must cope.
        let a = CsrMatrix::from_rows(
            2,
            &[
                vec![(0, 1.0), (1, 1.0)],
                vec![(0, 1.0), (1, 1.0)],
            ],
        );
        let dual = MaxEntDual::new(a, vec![1.0, 1.0]);
        let sol = newton_maxent(&dual, &[0.0, 0.0], &NewtonConfig::default());
        let p = dual.primal(&sol.x);
        assert!(dual.residual(&p) < 1e-6, "residual {}", dual.residual(&p));
    }
}
