//! Strong-Wolfe line search (Nocedal & Wright, Algorithms 3.5 & 3.6).

use crate::objective::Objective;
use pm_linalg::{axpy, copy, dot};

/// Line-search parameters. Defaults follow Nocedal & Wright's
/// recommendations for quasi-Newton methods (`c1 = 1e-4`, `c2 = 0.9`).
#[derive(Debug, Clone, Copy)]
pub struct WolfeParams {
    /// Sufficient-decrease (Armijo) constant.
    pub c1: f64,
    /// Curvature constant.
    pub c2: f64,
    /// Maximum bracketing/zoom iterations.
    pub max_iters: usize,
    /// Upper bound on the step length.
    pub alpha_max: f64,
}

impl Default for WolfeParams {
    fn default() -> Self {
        Self { c1: 1e-4, c2: 0.9, max_iters: 50, alpha_max: 1e6 }
    }
}

/// Result of a line search.
#[derive(Debug, Clone)]
pub struct LineSearchResult {
    /// Accepted step length (0 on failure).
    pub alpha: f64,
    /// `f(x + alpha·d)`.
    pub f: f64,
    /// Number of objective evaluations consumed.
    pub evals: usize,
    /// Whether the strong Wolfe conditions were satisfied.
    pub success: bool,
}

/// State for a point on the search ray.
struct RayEval {
    f: f64,
    /// Directional derivative `∇f(x+αd)ᵀd`.
    dphi: f64,
}

/// Searches along `d` from `x` for a step satisfying the strong Wolfe
/// conditions. On success, `x_out` and `grad_out` hold the accepted point
/// and its gradient.
///
/// `f0`/`g0d` are the objective value and directional derivative at `x`
/// (already computed by the caller). `d` must be a descent direction
/// (`g0d < 0`); if not, the search fails immediately.
#[allow(clippy::too_many_arguments)]
pub fn strong_wolfe(
    obj: &dyn Objective,
    x: &[f64],
    d: &[f64],
    f0: f64,
    g0d: f64,
    params: &WolfeParams,
    x_out: &mut [f64],
    grad_out: &mut [f64],
) -> LineSearchResult {
    let mut evals = 0usize;
    if g0d >= 0.0 || !g0d.is_finite() {
        return LineSearchResult { alpha: 0.0, f: f0, evals, success: false };
    }

    let mut eval_at = |alpha: f64, x_out: &mut [f64], grad_out: &mut [f64]| -> RayEval {
        copy(x, x_out);
        axpy(alpha, d, x_out);
        let f = obj.eval(x_out, grad_out);
        evals += 1;
        RayEval { f, dphi: dot(grad_out, d) }
    };

    let mut alpha_prev = 0.0;
    let mut f_prev = f0;
    let mut dphi_prev = g0d;
    let mut alpha = 1.0f64.min(params.alpha_max);

    // Bracketing phase (N&W Algorithm 3.5).
    let mut bracket: Option<(f64, f64, f64, f64, f64, f64)> = None; // (lo, f_lo, dphi_lo, hi, f_hi, dphi_hi)
    for i in 0..params.max_iters {
        let e = eval_at(alpha, x_out, grad_out);
        if !e.f.is_finite() {
            // Overstepped into an infinite region (possible for exp-family
            // duals with extreme multipliers): shrink and retry.
            alpha = 0.5 * (alpha_prev + alpha);
            continue;
        }
        if e.f > f0 + params.c1 * alpha * g0d || (i > 0 && e.f >= f_prev) {
            bracket = Some((alpha_prev, f_prev, dphi_prev, alpha, e.f, e.dphi));
            break;
        }
        if e.dphi.abs() <= -params.c2 * g0d {
            return LineSearchResult { alpha, f: e.f, evals, success: true };
        }
        if e.dphi >= 0.0 {
            bracket = Some((alpha, e.f, e.dphi, alpha_prev, f_prev, dphi_prev));
            break;
        }
        alpha_prev = alpha;
        f_prev = e.f;
        dphi_prev = e.dphi;
        alpha = (2.0 * alpha).min(params.alpha_max);
        if alpha >= params.alpha_max {
            let e = eval_at(alpha, x_out, grad_out);
            return LineSearchResult { alpha, f: e.f, evals, success: false };
        }
    }

    let Some((mut lo, mut f_lo, mut dphi_lo, mut hi, mut f_hi, _dphi_hi)) = bracket else {
        return LineSearchResult { alpha: 0.0, f: f0, evals, success: false };
    };

    // Zoom phase (N&W Algorithm 3.6) with bisection/interpolation.
    for _ in 0..params.max_iters {
        // Quadratic interpolation using (lo, f_lo, dphi_lo) and (hi, f_hi);
        // guarded bisection keeps the step well inside the interval.
        let mut a = {
            let denom = 2.0 * (f_hi - f_lo - dphi_lo * (hi - lo));
            if denom.abs() > 1e-300 {
                lo - dphi_lo * (hi - lo) * (hi - lo) / denom
            } else {
                0.5 * (lo + hi)
            }
        };
        let (lo_b, hi_b) = if lo < hi { (lo, hi) } else { (hi, lo) };
        let guard = 0.1 * (hi_b - lo_b);
        if !(a.is_finite()) || a < lo_b + guard || a > hi_b - guard {
            a = 0.5 * (lo + hi);
        }
        let e = eval_at(a, x_out, grad_out);
        if !e.f.is_finite() || e.f > f0 + params.c1 * a * g0d || e.f >= f_lo {
            hi = a;
            f_hi = e.f;
        } else {
            if e.dphi.abs() <= -params.c2 * g0d {
                return LineSearchResult { alpha: a, f: e.f, evals, success: true };
            }
            if e.dphi * (hi - lo) >= 0.0 {
                hi = lo;
                f_hi = f_lo;
            }
            lo = a;
            f_lo = e.f;
            dphi_lo = e.dphi;
        }
        if (hi - lo).abs() < 1e-16 * lo.abs().max(1.0) {
            break;
        }
    }

    // Fall back to the best point found if it at least decreases f.
    if f_lo < f0 && lo > 0.0 {
        let e = eval_at(lo, x_out, grad_out);
        return LineSearchResult { alpha: lo, f: e.f, evals, success: true };
    }
    LineSearchResult { alpha: 0.0, f: f0, evals, success: false }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{DiagonalQuadratic, Objective, Rosenbrock};

    #[test]
    fn exact_step_on_quadratic() {
        // f(x) = ½x² − x: from x=0 along d=1, the minimiser is at α=1.
        let q = DiagonalQuadratic { d: vec![1.0], b: vec![1.0] };
        let x = [0.0];
        let d = [1.0];
        let mut g = vec![0.0; 1];
        let f0 = q.eval(&x, &mut g);
        let mut xo = vec![0.0];
        let mut go = vec![0.0];
        let r = strong_wolfe(&q, &x, &d, f0, g[0], &WolfeParams::default(), &mut xo, &mut go);
        assert!(r.success);
        // Any strong-Wolfe point must decrease f and flatten the slope.
        assert!(r.f < f0);
        assert!(go[0].abs() <= 0.9);
    }

    #[test]
    fn rejects_ascent_direction() {
        let q = DiagonalQuadratic { d: vec![1.0], b: vec![0.0] };
        let x = [1.0];
        let d = [1.0]; // uphill: gradient at x is +1
        let mut g = vec![0.0; 1];
        let f0 = q.eval(&x, &mut g);
        let mut xo = vec![0.0];
        let mut go = vec![0.0];
        let r = strong_wolfe(&q, &x, &d, f0, g[0], &WolfeParams::default(), &mut xo, &mut go);
        assert!(!r.success);
        assert_eq!(r.alpha, 0.0);
    }

    #[test]
    fn rosenbrock_descent_step_found() {
        let r = Rosenbrock { n: 2 };
        let x = [-1.2, 1.0];
        let mut g = vec![0.0; 2];
        let f0 = r.eval(&x, &mut g);
        let d: Vec<f64> = g.iter().map(|v| -v).collect();
        let g0d = pm_linalg::dot(&g, &d);
        let mut xo = vec![0.0; 2];
        let mut go = vec![0.0; 2];
        let res = strong_wolfe(&r, &x, &d, f0, g0d, &WolfeParams::default(), &mut xo, &mut go);
        assert!(res.success);
        assert!(res.f < f0);
    }
}
