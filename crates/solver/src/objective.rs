//! The smooth objective abstraction shared by all first-order solvers.

/// A continuously differentiable objective `f : ℝⁿ → ℝ` to be *minimised*.
///
/// Implementations compute the value and gradient in one pass — for the
/// maxent dual both require the same `exp(aᵢᵀλ − 1)` vector, so fusing them
/// halves the dominant cost.
pub trait Objective {
    /// Problem dimension `n`.
    fn dim(&self) -> usize;

    /// Evaluates `f(x)` and writes `∇f(x)` into `grad` (length `n`).
    fn eval(&self, x: &[f64], grad: &mut [f64]) -> f64;

    /// Evaluates `f(x)` only. The default allocates a scratch gradient;
    /// override when a cheaper value-only path exists.
    fn value(&self, x: &[f64]) -> f64 {
        let mut g = vec![0.0; self.dim()];
        self.eval(x, &mut g)
    }
}

/// A convex quadratic `f(x) = ½ xᵀ diag(d) x − bᵀx`, used to validate the
/// solvers against the analytic minimiser `x* = b ./ d`.
#[derive(Debug, Clone)]
pub struct DiagonalQuadratic {
    /// Positive diagonal of the Hessian.
    pub d: Vec<f64>,
    /// Linear term.
    pub b: Vec<f64>,
}

impl DiagonalQuadratic {
    /// The analytic minimiser.
    pub fn minimizer(&self) -> Vec<f64> {
        self.d.iter().zip(&self.b).map(|(&d, &b)| b / d).collect()
    }
}

impl Objective for DiagonalQuadratic {
    fn dim(&self) -> usize {
        self.d.len()
    }

    fn eval(&self, x: &[f64], grad: &mut [f64]) -> f64 {
        let mut f = 0.0;
        for i in 0..x.len() {
            f += 0.5 * self.d[i] * x[i] * x[i] - self.b[i] * x[i];
            grad[i] = self.d[i] * x[i] - self.b[i];
        }
        f
    }
}

/// The extended Rosenbrock function, the classic ill-conditioned non-convex
/// test problem; minimiser is the all-ones vector.
#[derive(Debug, Clone, Copy)]
pub struct Rosenbrock {
    /// Dimension (must be even for the "extended" pairing).
    pub n: usize,
}

impl Objective for Rosenbrock {
    fn dim(&self) -> usize {
        self.n
    }

    fn eval(&self, x: &[f64], grad: &mut [f64]) -> f64 {
        grad.fill(0.0);
        let mut f = 0.0;
        for i in 0..self.n - 1 {
            let a = x[i + 1] - x[i] * x[i];
            let b = 1.0 - x[i];
            f += 100.0 * a * a + b * b;
            grad[i] += -400.0 * x[i] * a - 2.0 * b;
            grad[i + 1] += 200.0 * a;
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_gradient_at_minimizer_vanishes() {
        let q = DiagonalQuadratic { d: vec![2.0, 4.0], b: vec![2.0, 8.0] };
        let xstar = q.minimizer();
        assert_eq!(xstar, vec![1.0, 2.0]);
        let mut g = vec![0.0; 2];
        q.eval(&xstar, &mut g);
        assert!(g.iter().all(|v| v.abs() < 1e-14));
    }

    #[test]
    fn rosenbrock_minimum_is_zero_at_ones() {
        let r = Rosenbrock { n: 4 };
        let mut g = vec![0.0; 4];
        let f = r.eval(&[1.0; 4], &mut g);
        assert!(f.abs() < 1e-14);
        assert!(g.iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn rosenbrock_gradient_matches_finite_difference() {
        let r = Rosenbrock { n: 4 };
        let x = [0.3, -0.7, 1.2, 0.5];
        let mut g = vec![0.0; 4];
        r.eval(&x, &mut g);
        let h = 1e-6;
        for i in 0..4 {
            let mut xp = x;
            xp[i] += h;
            let mut xm = x;
            xm[i] -= h;
            let fd = (r.value(&xp) - r.value(&xm)) / (2.0 * h);
            assert!((g[i] - fd).abs() < 1e-3, "component {i}: {} vs {}", g[i], fd);
        }
    }
}
