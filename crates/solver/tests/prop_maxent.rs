//! Property tests of the maxent dual solver on random feasible normalized
//! systems: the primal output must be a valid probability distribution, its
//! entropy can never exceed the uniform bound, and the dual objective is
//! monotone in the iteration budget.
//!
//! The last property is the KL-monotonicity of the method: when the system
//! contains the normalization row `Σp = 1`, the dual gap at any iterate
//! `λ_k` satisfies `g(λ_k) − g(λ*) = KL(p* ‖ p_k)` (standard exponential-
//! family duality), so a non-increasing dual objective is exactly a
//! non-increasing KL divergence from the maxent optimum.

use pm_linalg::CsrMatrix;
use pm_solver::{Lbfgs, LbfgsConfig, MaxEntDual, Objective};
use proptest::prelude::*;

/// Builds a random feasible system containing the normalization constraint:
/// plant a strictly positive distribution `x*` over `n` terms, then add `m`
/// random 0/1 rows whose right-hand side is the exact value at `x*`, so the
/// system is feasible with a strictly interior solution.
fn feasible_normalized_system() -> impl Strategy<Value = MaxEntDual> {
    (2usize..8, 0usize..4, 0u64..10_000).prop_map(|(n, m, seed)| {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        // Strictly positive planted distribution, normalized to 1.
        let raw: Vec<f64> = (0..n).map(|_| 0.2 + (next() % 80) as f64 / 100.0).collect();
        let total: f64 = raw.iter().sum();
        let xstar: Vec<f64> = raw.iter().map(|v| v / total).collect();

        let mut rows: Vec<Vec<(usize, f64)>> = vec![(0..n).map(|t| (t, 1.0)).collect()];
        let mut rhs = vec![1.0];
        for _ in 0..m {
            let coeffs: Vec<(usize, f64)> =
                (0..n).filter(|_| next() % 2 == 0).map(|t| (t, 1.0)).collect();
            if coeffs.is_empty() || coeffs.len() == n {
                continue; // skip empty / duplicate-of-normalization rows
            }
            rhs.push(coeffs.iter().map(|&(t, _)| xstar[t]).sum());
            rows.push(coeffs);
        }
        MaxEntDual::new(CsrMatrix::from_rows(n, &rows), rhs)
    })
}

fn solver(max_iterations: usize) -> Lbfgs {
    Lbfgs::new(LbfgsConfig { tolerance: 1e-12, max_iterations, ..Default::default() })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The solved primal is a valid probability distribution: every term is
    /// finite and non-negative (strictly positive, by the exponential form)
    /// and the masses sum to 1 via the normalization constraint.
    #[test]
    fn primal_is_valid_distribution(dual in feasible_normalized_system()) {
        let lambda0 = vec![0.0; dual.num_constraints()];
        let sol = solver(500).minimize(&dual, &lambda0);
        let p = dual.primal(&sol.x);
        for &v in &p {
            prop_assert!(v.is_finite() && v >= 0.0, "invalid mass {v}");
        }
        let residual = dual.residual(&p);
        prop_assert!(residual < 1e-6, "constraint residual {residual}");
        let sum: f64 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "masses sum to {sum}");
    }

    /// Maximum entropy never exceeds the uniform bound `ln n`, and is
    /// non-negative for a normalized distribution.
    #[test]
    fn entropy_bounded_by_uniform(dual in feasible_normalized_system()) {
        let lambda0 = vec![0.0; dual.num_constraints()];
        let sol = solver(500).minimize(&dual, &lambda0);
        let p = dual.primal(&sol.x);
        let h = MaxEntDual::entropy(&p);
        let n = dual.num_terms() as f64;
        prop_assert!(h >= -1e-9, "entropy {h} negative");
        prop_assert!(h <= n.ln() + 1e-6, "entropy {h} exceeds ln({n})");
    }

    /// The dual objective after `k` iterations is non-increasing in `k`:
    /// L-BFGS is deterministic, so budget `k+1` extends the same trajectory
    /// by one Wolfe-line-search step, which cannot increase the objective.
    /// By duality this is KL(p* ‖ p_k) decreasing monotonically.
    #[test]
    fn dual_objective_monotone_across_iterations(dual in feasible_normalized_system()) {
        let lambda0 = vec![0.0; dual.num_constraints()];
        let mut prev = f64::INFINITY;
        for budget in 1..=12 {
            let sol = solver(budget).minimize(&dual, &lambda0);
            // Re-evaluate: Solution::value is already g(λ), but recompute
            // defensively so the property holds of the reported point.
            let mut grad = vec![0.0; dual.num_constraints()];
            let g = dual.eval(&sol.x, &mut grad);
            prop_assert!(
                g <= prev + 1e-9,
                "dual objective rose from {prev} to {g} at budget {budget}"
            );
            prev = g;
        }
    }
}
