//! Ready-made published tables for tests and examples.

use pm_microdata::dataset::Dataset;
use pm_microdata::fixtures::{figure1_bucket_rows, figure1_dataset};

use crate::published::PublishedTable;

/// The paper's running example: the original data of Figure 1(a) together
/// with its bucketization `D'` of Figure 1(b)/(c).
pub fn paper_example() -> (Dataset, PublishedTable) {
    let data = figure1_dataset();
    let table = PublishedTable::from_partition(&data, &figure1_bucket_rows())
        .expect("figure 1 partition is valid");
    (data, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_matches_figure1c() {
        let (data, table) = paper_example();
        assert_eq!(data.len(), 10);
        assert_eq!(table.num_buckets(), 3);
        assert_eq!(table.interner().distinct(), 6);
        // Bucket sizes 4, 3, 3 (Figure 1(c)).
        let sizes: Vec<usize> = table.buckets().map(|b| b.size()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }
}
