//! Errors for bucketization and publication.

use std::fmt;

/// Errors raised while bucketizing or assembling a published table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnonymizeError {
    /// The provided bucket row lists do not partition `0..n`.
    NotAPartition,
    /// The dataset cannot satisfy the requested diversity: some non-exempt
    /// SA value is more frequent than the number of buckets.
    DiversityUnsatisfiable {
        /// The offending SA code.
        sa_value: u16,
        /// Its record count.
        count: usize,
        /// Number of buckets available.
        buckets: usize,
    },
    /// Fewer records than one bucket's worth.
    TooFewRecords {
        /// Records present.
        got: usize,
        /// Minimum required (= ℓ).
        need: usize,
    },
    /// The underlying dataset misses a sensitive attribute.
    Microdata(pm_microdata::MicrodataError),
    /// A record-level delta (insert / retract / move) is inconsistent with
    /// the published table — e.g. retracting a QI symbol or SA value a
    /// bucket does not hold.
    InvalidDelta {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// Reassembling a table from decomposed parts
    /// ([`crate::published::PublishedTable::from_parts`]) found them
    /// mutually inconsistent — unsorted multisets, ids outside the symbol
    /// table, mismatched QI/SA totals within a bucket.
    InconsistentParts {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
}

impl fmt::Display for AnonymizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotAPartition => write!(f, "bucket lists do not partition the record set"),
            Self::DiversityUnsatisfiable { sa_value, count, buckets } => write!(
                f,
                "SA value {sa_value} occurs {count} times but only {buckets} buckets exist; \
                 exempt it or lower ell"
            ),
            Self::TooFewRecords { got, need } => {
                write!(f, "{got} records cannot fill a bucket of {need}")
            }
            Self::Microdata(e) => write!(f, "microdata error: {e}"),
            Self::InvalidDelta { detail } => write!(f, "invalid table delta: {detail}"),
            Self::InconsistentParts { detail } => {
                write!(f, "inconsistent published-table parts: {detail}")
            }
        }
    }
}

impl std::error::Error for AnonymizeError {}

impl From<pm_microdata::MicrodataError> for AnonymizeError {
    fn from(e: pm_microdata::MicrodataError) -> Self {
        Self::Microdata(e)
    }
}
