//! Enumeration of bucket assignments (Definition 5.2).
//!
//! An *assignment* Λ(b) pairs each QI instance of a bucket with one SA
//! instance, using every instance exactly once. Invariants (Definition 5.4)
//! are probability expressions constant across all assignments — the test
//! suites verify soundness and completeness by brute-force enumeration here.

use std::collections::BTreeMap;

use pm_microdata::qi::QiId;
use pm_microdata::value::Value;

use crate::published::BucketView;

/// One assignment, summarised as joint pair counts
/// `(q, s) → #records assigned that pairing`.
pub type AssignmentCounts = BTreeMap<(QiId, Value), usize>;

/// Enumerates every *distinct* assignment of a bucket.
///
/// Distinctness is at the level of the induced pair-count map: permuting two
/// identical SA instances yields the same assignment (the paper counts `q1`
/// and `s2` "twice" in Figure 2 but treats equal pairings as one).
///
/// The number of distinct assignments is bounded by the multinomial of the
/// bucket size, so this is strictly a small-bucket (test) facility.
pub fn enumerate_assignments(bucket: &BucketView) -> Vec<AssignmentCounts> {
    // Expand QI symbols into slots.
    let mut slots: Vec<QiId> = Vec::with_capacity(bucket.size());
    for &(q, c) in bucket.qi_counts() {
        slots.extend(std::iter::repeat_n(q, c));
    }
    // SA instances as a count map for multiset permutation.
    let mut remaining: Vec<(Value, usize)> = bucket.sa_counts().to_vec();
    let mut out: Vec<AssignmentCounts> = Vec::new();
    let mut current: Vec<Value> = Vec::with_capacity(slots.len());

    fn recurse(
        slots: &[QiId],
        depth: usize,
        remaining: &mut Vec<(Value, usize)>,
        current: &mut Vec<Value>,
        out: &mut Vec<AssignmentCounts>,
    ) {
        if depth == slots.len() {
            let mut counts = AssignmentCounts::new();
            for (&q, &s) in slots.iter().zip(current.iter()) {
                *counts.entry((q, s)).or_default() += 1;
            }
            if !out.contains(&counts) {
                out.push(counts);
            }
            return;
        }
        for i in 0..remaining.len() {
            if remaining[i].1 == 0 {
                continue;
            }
            remaining[i].1 -= 1;
            current.push(remaining[i].0);
            recurse(slots, depth + 1, remaining, current, out);
            current.pop();
            remaining[i].1 += 1;
        }
    }

    recurse(&slots, 0, &mut remaining, &mut current, &mut out);
    out
}

/// Evaluates a linear probability expression `Σ coef·P(q, s, b)` under an
/// assignment, with `N` the total record count of the published table
/// (probability terms are pair counts divided by `N`).
pub fn evaluate_expression(
    assignment: &AssignmentCounts,
    terms: &[((QiId, Value), f64)],
    total_records: usize,
) -> f64 {
    terms
        .iter()
        .map(|&((q, s), coef)| {
            coef * assignment.get(&(q, s)).copied().unwrap_or(0) as f64
                / total_records as f64
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::published::PublishedTable;
    use pm_microdata::fixtures::{figure1_bucket_rows, figure1_dataset};

    fn bucket1() -> (PublishedTable, usize) {
        let d = figure1_dataset();
        let t = PublishedTable::from_partition(&d, &figure1_bucket_rows()).unwrap();
        (t, 0)
    }

    #[test]
    fn figure2_assignment_count() {
        // Bucket 1: QI slots {q1, q1, q2, q3}, SA multiset {flu×2,
        // pneumonia, breast-cancer}. Distinct assignments = 4!/2!/2!
        // adjusted for identical pairings; brute force gives the ground
        // truth — just sanity-check bounds and containment of the paper's
        // two example assignments.
        let (t, b) = bucket1();
        let assignments = enumerate_assignments(t.bucket(b));
        assert!(assignments.len() > 1, "bucket 1 must be ambiguous");
        assert!(assignments.len() <= 24);
        // The true assignment (from Figure 1(a)) must be among them:
        // Allen(q1)→flu, Brian(q1)→pneumonia, Cathy(q2)→breast cancer,
        // David(q3)→flu.
        let q1 = t.interner().lookup(&[0, 0]).unwrap();
        let q2 = t.interner().lookup(&[1, 0]).unwrap();
        let q3 = t.interner().lookup(&[0, 1]).unwrap();
        let mut truth = AssignmentCounts::new();
        *truth.entry((q1, 0)).or_default() += 1; // flu
        *truth.entry((q1, 1)).or_default() += 1; // pneumonia
        *truth.entry((q2, 2)).or_default() += 1; // breast cancer
        *truth.entry((q3, 0)).or_default() += 1; // flu
        assert!(assignments.contains(&truth));
    }

    #[test]
    fn every_assignment_preserves_marginals() {
        let (t, b) = bucket1();
        let bucket = t.bucket(b);
        for a in enumerate_assignments(bucket) {
            // Row sums = QI multiplicities; column sums = SA multiplicities.
            for &(q, c) in bucket.qi_counts() {
                let got: usize = a
                    .iter()
                    .filter(|&(&(qq, _), _)| qq == q)
                    .map(|(_, &cnt)| cnt)
                    .sum();
                assert_eq!(got, c);
            }
            for &(s, c) in bucket.sa_counts() {
                let got: usize = a
                    .iter()
                    .filter(|&(&(_, ss), _)| ss == s)
                    .map(|(_, &cnt)| cnt)
                    .sum();
                assert_eq!(got, c);
            }
        }
    }

    #[test]
    fn expression_evaluation_detects_non_invariants() {
        // Section 5.1's example: P(q1, s1, 1) alone is NOT an invariant.
        let (t, b) = bucket1();
        let q1 = t.interner().lookup(&[0, 0]).unwrap();
        let terms = vec![((q1, 0u16), 1.0)];
        let vals: Vec<f64> = enumerate_assignments(t.bucket(b))
            .iter()
            .map(|a| evaluate_expression(a, &terms, t.total_records()))
            .collect();
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 1e-9, "single term should vary across assignments");
    }

    #[test]
    fn qi_sum_is_invariant_across_assignments() {
        // Section 5.1: Σ_s P(q1, s, 1) is invariant (= P(q1, 1) = 2/10).
        let (t, b) = bucket1();
        let q1 = t.interner().lookup(&[0, 0]).unwrap();
        let terms: Vec<((usize, u16), f64)> =
            (0..5u16).map(|s| ((q1, s), 1.0)).collect();
        for a in enumerate_assignments(t.bucket(b)) {
            let v = evaluate_expression(&a, &terms, t.total_records());
            assert!((v - 0.2).abs() < 1e-12);
        }
    }
}
