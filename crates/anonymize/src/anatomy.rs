//! Anatomy-style ℓ-diversity bucketization.
//!
//! Uses the *sorted round-robin* construction: records are grouped by SA
//! value, groups are concatenated largest-first, and record `j` of the
//! concatenation goes to bucket `j mod m` (with `m = ⌊N/ℓ⌋`). Because each
//! SA group is contiguous, a value with at most `m` occurrences lands in any
//! bucket at most once — which is exactly distinct ℓ-diversity when every
//! bucket holds ℓ records.
//!
//! The paper's evaluation bucketizes 14,210 Adult records into 2,842 buckets
//! of five and notes (footnote 3) that "the most frequent values of SA \[are\]
//! not considered as sensitive" when checking 5-diversity; the
//! [`AnatomyConfig::exempt_top`] knob reproduces that relaxation: exempted
//! values may repeat within a bucket, all others may not.

use pm_microdata::dataset::Dataset;
use pm_microdata::value::Value;

use crate::error::AnonymizeError;
use crate::published::PublishedTable;

/// Configuration of the bucketizer.
#[derive(Debug, Clone)]
pub struct AnatomyConfig {
    /// Records per bucket (ℓ of ℓ-diversity). The paper uses 5.
    pub ell: usize,
    /// How many of the most frequent SA values are exempt from the
    /// distinctness requirement (paper footnote 3). `0` demands strict
    /// distinct ℓ-diversity.
    pub exempt_top: usize,
}

impl Default for AnatomyConfig {
    fn default() -> Self {
        Self { ell: 5, exempt_top: 1 }
    }
}

/// The bucketizer.
#[derive(Debug, Clone, Default)]
pub struct AnatomyBucketizer {
    /// Configuration used by [`AnatomyBucketizer::partition`].
    pub config: AnatomyConfig,
}

impl AnatomyBucketizer {
    /// Creates a bucketizer.
    pub fn new(config: AnatomyConfig) -> Self {
        Self { config }
    }

    /// Computes a bucket partition of `data` (lists of record indices).
    ///
    /// Fails if any *non-exempt* SA value occurs more often than the number
    /// of buckets, which would force a within-bucket repeat.
    pub fn partition(&self, data: &Dataset) -> Result<Vec<Vec<usize>>, AnonymizeError> {
        let ell = self.config.ell;
        let n = data.len();
        if n < ell || ell == 0 {
            return Err(AnonymizeError::TooFewRecords { got: n, need: ell.max(1) });
        }
        let sa_attr = data.schema().sensitive()?;
        let sa_card = data.schema().sa_cardinality()?;
        let m = n / ell; // number of buckets; remainder spills into early buckets

        // Group record indices by SA value.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); sa_card];
        for (i, r) in data.records().enumerate() {
            groups[r.get(sa_attr) as usize].push(i);
        }
        // Largest-first ordering; determine the exempt set.
        let mut order: Vec<usize> = (0..sa_card).collect();
        order.sort_by_key(|&s| std::cmp::Reverse(groups[s].len()));
        let exempt: Vec<Value> = order
            .iter()
            .take(self.config.exempt_top)
            .map(|&s| s as Value)
            .collect();
        for &s in order.iter().skip(self.config.exempt_top) {
            if groups[s].len() > m {
                return Err(AnonymizeError::DiversityUnsatisfiable {
                    sa_value: s as Value,
                    count: groups[s].len(),
                    buckets: m,
                });
            }
        }
        let _ = exempt;

        // Concatenate largest-first and deal round-robin.
        let mut buckets: Vec<Vec<usize>> = vec![Vec::with_capacity(ell + 1); m];
        let mut j = 0usize;
        for &s in &order {
            for &rec in &groups[s] {
                buckets[j % m].push(rec);
                j += 1;
            }
        }
        Ok(buckets)
    }

    /// Convenience: partition and assemble the published table in one step.
    pub fn publish(&self, data: &Dataset) -> Result<PublishedTable, AnonymizeError> {
        let partition = self.partition(data)?;
        PublishedTable::from_partition(data, &partition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_datagen::adult::{AdultGenerator, AdultGeneratorConfig};
    use pm_datagen::workload::{synthetic_dataset, WorkloadConfig};
    use pm_microdata::fixtures::figure1_dataset;

    #[test]
    fn partitions_every_record_exactly_once() {
        // The default workload couples sa = qi0 mod 6 half the time, so SA
        // values 0..4 each expect ~21.5 of 103 records — more than the 20
        // buckets. Exempt all four so feasibility never depends on the RNG.
        let d = synthetic_dataset(&WorkloadConfig { records: 103, ..Default::default() });
        let b = AnatomyBucketizer::new(AnatomyConfig { ell: 5, exempt_top: 4 })
            .partition(&d)
            .unwrap();
        let mut seen = [false; 103];
        for rows in &b {
            for &r in rows {
                assert!(!seen[r]);
                seen[r] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        // 103 = 20 buckets of 5 + remainder 3 spread across early buckets.
        assert_eq!(b.len(), 20);
        assert!(b.iter().all(|rows| rows.len() == 5 || rows.len() == 6));
    }

    #[test]
    fn paper_scale_adult_bucketization() {
        let d = AdultGenerator::new(AdultGeneratorConfig::default()).generate();
        let t = AnatomyBucketizer::default().publish(&d).unwrap();
        // 14,210 records in buckets of five ⇒ 2,842 buckets, as in Section 7.
        assert_eq!(t.num_buckets(), 2842);
        assert!(t.buckets().all(|b| b.size() == 5));
    }

    #[test]
    fn non_exempt_values_never_repeat_within_bucket() {
        let d = AdultGenerator::new(AdultGeneratorConfig { records: 5000, seed: 11 })
            .generate();
        let cfg = AnatomyConfig { ell: 5, exempt_top: 1 };
        let t = AnatomyBucketizer::new(cfg).publish(&d).unwrap();
        // Identify the single exempt (most frequent) SA value.
        let mut counts = vec![0usize; t.sa_cardinality()];
        for b in t.buckets() {
            for &(s, c) in b.sa_counts() {
                counts[s as usize] += c;
            }
        }
        let exempt = counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .map(|(s, _)| s as u16)
            .unwrap();
        for b in t.buckets() {
            for &(s, c) in b.sa_counts() {
                if s != exempt {
                    assert!(c <= 1, "non-exempt value {s} repeats {c}× in a bucket");
                }
            }
        }
    }

    #[test]
    fn strict_diversity_failure_detected() {
        // 10 records, 9 of the same SA value, ell=5 ⇒ 2 buckets; the value
        // occurs 9 > 2 times and is not exempt ⇒ error.
        let d = synthetic_dataset(&WorkloadConfig {
            records: 10,
            qi_arities: vec![2],
            sa_arity: 2,
            correlation: 1.0, // sa = qi0 mod 2; qi0 random — not extreme enough
            seed: 9,
        });
        // Construct a genuinely skewed dataset instead.
        let mut skew = pm_microdata::dataset::Dataset::new(d.schema().clone());
        for i in 0..10u16 {
            skew.push(&[i % 2, u16::from(i == 0)]).unwrap();
        }
        let r = AnatomyBucketizer::new(AnatomyConfig { ell: 5, exempt_top: 0 }).partition(&skew);
        assert!(matches!(r, Err(AnonymizeError::DiversityUnsatisfiable { .. })));
        // With one exemption it succeeds.
        let r = AnatomyBucketizer::new(AnatomyConfig { ell: 5, exempt_top: 1 }).partition(&skew);
        assert!(r.is_ok());
    }

    #[test]
    fn too_few_records_rejected() {
        let d = figure1_dataset();
        let r = AnatomyBucketizer::new(AnatomyConfig { ell: 50, exempt_top: 0 }).partition(&d);
        assert!(matches!(r, Err(AnonymizeError::TooFewRecords { .. })));
    }
}
