//! Pseudonym expansion for knowledge about individuals (Section 6).
//!
//! Identifiers are removed during anonymization, so to express knowledge
//! like "Alice (whose QI is q₁) has s₁ with probability 0.2" the paper adds
//! *pseudonyms* back to the published table (Figure 4): each occurrence of a
//! QI value gets a distinct pseudonym, and every occurrence of the same QI
//! value carries the full pseudonym *set* (the adversary cannot tell which
//! occurrence is which person).

use pm_microdata::qi::{QiId, QiInterner};

/// A pseudonym id (`i1, i2, …` in Figure 4), globally dense across the
/// table: person `k` of QI symbol `q` has id `offset(q) + k`.
pub type PseudonymId = usize;

/// The pseudonym table: maps QI symbols to their pseudonym ranges.
#[derive(Debug, Clone)]
pub struct PseudonymTable {
    /// `offsets[q]..offsets[q+1]` are the pseudonyms of symbol `q`.
    offsets: Vec<usize>,
}

impl PseudonymTable {
    /// Builds the table from a QI interner: symbol `q` with multiplicity `k`
    /// receives `k` pseudonyms (one per record, matching the paper's
    /// one-record-per-person assumption).
    pub fn from_interner(interner: &QiInterner) -> Self {
        let mut offsets = Vec::with_capacity(interner.distinct() + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for q in 0..interner.distinct() {
            acc += interner.count(q);
            offsets.push(acc);
        }
        Self { offsets }
    }

    /// Total pseudonyms (= total records).
    pub fn total(&self) -> usize {
        *self.offsets.last().unwrap_or(&0)
    }

    /// The pseudonyms associated with QI symbol `q`.
    pub fn pseudonyms_of(&self, q: QiId) -> std::ops::Range<PseudonymId> {
        self.offsets[q]..self.offsets[q + 1]
    }

    /// Number of pseudonyms of `q` (its multiplicity in the data).
    pub fn multiplicity(&self, q: QiId) -> usize {
        self.offsets[q + 1] - self.offsets[q]
    }

    /// The QI symbol owning pseudonym `i`.
    pub fn owner(&self, i: PseudonymId) -> QiId {
        match self.offsets.binary_search(&i) {
            Ok(q) if q + 1 < self.offsets.len() => q,
            Ok(q) => q - 1,
            Err(q) => q - 1,
        }
    }

    /// Display name matching Figure 4 (`i1`-based).
    pub fn name(&self, i: PseudonymId) -> String {
        format!("i{}", i + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_microdata::fixtures::figure1_dataset;
    use pm_microdata::qi::QiInterner;

    #[test]
    fn figure4_pseudonym_layout() {
        let d = figure1_dataset();
        let interner = QiInterner::from_dataset(&d);
        let t = PseudonymTable::from_interner(&interner);
        assert_eq!(t.total(), 10);
        // q1 = {male, college} has multiplicity 3 → pseudonyms {i1, i2, i3}.
        let q1 = interner.lookup(&[0, 0]).unwrap();
        assert_eq!(t.pseudonyms_of(q1), 0..3);
        assert_eq!(t.multiplicity(q1), 3);
        assert_eq!(t.name(0), "i1");
        // Unique QI values get a single pseudonym each.
        let q4 = interner.lookup(&[1, 2]).unwrap(); // {female, junior}
        assert_eq!(t.multiplicity(q4), 1);
    }

    #[test]
    fn owner_is_inverse_of_pseudonyms_of() {
        let d = figure1_dataset();
        let interner = QiInterner::from_dataset(&d);
        let t = PseudonymTable::from_interner(&interner);
        for q in 0..interner.distinct() {
            for i in t.pseudonyms_of(q) {
                assert_eq!(t.owner(i), q, "pseudonym {i}");
            }
        }
    }
}
