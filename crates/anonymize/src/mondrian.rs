//! Mondrian multidimensional k-anonymity partitioning (LeFevre et al.),
//! viewed through Privacy-MaxEnt.
//!
//! The paper's first future-work direction is to "apply the similar method
//! to other data disguising methods, such as generalization". For
//! generalization, every equivalence class (records sharing one generalized
//! QI region) is exactly a *bucket*: QI values within the class are
//! indistinguishable and the class's SA values form a multiset. Feeding a
//! Mondrian partition to [`crate::published::PublishedTable`] therefore
//! lets the unchanged maxent engine quantify generalization-based
//! publications too.
//!
//! The splitter is the classic greedy Mondrian: recursively cut the
//! partition on the QI attribute with the widest normalised range of
//! values, at the median, while both sides keep at least `k` records.

use pm_microdata::dataset::Dataset;
use pm_microdata::value::AttrId;

use crate::error::AnonymizeError;
use crate::published::PublishedTable;

/// Mondrian configuration.
#[derive(Debug, Clone)]
pub struct MondrianConfig {
    /// Minimum equivalence-class size (the `k` of k-anonymity).
    pub k: usize,
}

impl Default for MondrianConfig {
    fn default() -> Self {
        Self { k: 5 }
    }
}

/// The Mondrian partitioner.
#[derive(Debug, Clone, Default)]
pub struct Mondrian {
    /// Configuration used by [`Mondrian::partition`].
    pub config: MondrianConfig,
}

impl Mondrian {
    /// Creates a partitioner.
    pub fn new(config: MondrianConfig) -> Self {
        Self { config }
    }

    /// Computes the equivalence classes of `data` (lists of row indices),
    /// each of size ≥ k.
    pub fn partition(&self, data: &Dataset) -> Result<Vec<Vec<usize>>, AnonymizeError> {
        let k = self.config.k;
        if k == 0 || data.len() < k {
            return Err(AnonymizeError::TooFewRecords { got: data.len(), need: k.max(1) });
        }
        let qi: Vec<AttrId> = data.schema().qi_attrs().to_vec();
        let mut out = Vec::new();
        let all: Vec<usize> = (0..data.len()).collect();
        self.split(data, &qi, all, &mut out);
        Ok(out)
    }

    fn split(
        &self,
        data: &Dataset,
        qi: &[AttrId],
        rows: Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        let k = self.config.k;
        // Choose the attribute with the widest normalised value range in
        // this partition.
        let mut best: Option<(AttrId, f64)> = None;
        for &a in qi {
            let card = data.schema().attribute(a).domain().cardinality() as f64;
            let (mut lo, mut hi) = (u16::MAX, 0u16);
            for &r in &rows {
                let v = data.record(r).get(a);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi > lo {
                let spread = (hi - lo) as f64 / card;
                if best.map(|(_, s)| spread > s).unwrap_or(true) {
                    best = Some((a, spread));
                }
            }
        }
        let Some((attr, _)) = best else {
            out.push(rows); // all QI values identical: one class
            return;
        };

        // Median split on `attr`.
        let mut values: Vec<u16> = rows.iter().map(|&r| data.record(r).get(attr)).collect();
        values.sort_unstable();
        let median = values[values.len() / 2];
        let (mut left, mut right): (Vec<usize>, Vec<usize>) = rows
            .iter()
            .partition(|&&r| data.record(r).get(attr) < median);
        // Degenerate median (everything ≥ median on one side): try strictly
        // splitting at the median value itself.
        if left.is_empty() || right.is_empty() {
            let parts: (Vec<usize>, Vec<usize>) = rows
                .iter()
                .partition(|&&r| data.record(r).get(attr) <= median);
            left = parts.0;
            right = parts.1;
        }
        if left.len() >= k && right.len() >= k {
            self.split(data, qi, left, out);
            self.split(data, qi, right, out);
        } else {
            out.push(rows); // cannot cut without violating k
        }
    }

    /// Partitions and assembles the published (class-level) table.
    pub fn publish(&self, data: &Dataset) -> Result<PublishedTable, AnonymizeError> {
        let partition = self.partition(data)?;
        PublishedTable::from_partition(data, &partition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_datagen::adult::{AdultGenerator, AdultGeneratorConfig};
    use pm_datagen::workload::{synthetic_dataset, WorkloadConfig};

    #[test]
    fn classes_respect_k_and_partition() {
        let d = synthetic_dataset(&WorkloadConfig { records: 200, seed: 5, ..Default::default() });
        let classes = Mondrian::new(MondrianConfig { k: 7 }).partition(&d).unwrap();
        let mut seen = [false; 200];
        for c in &classes {
            assert!(c.len() >= 7, "class of {} records", c.len());
            for &r in c {
                assert!(!seen[r]);
                seen[r] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        assert!(classes.len() > 1, "200 records should split");
    }

    #[test]
    fn produces_many_classes_on_adult() {
        let d = AdultGenerator::new(AdultGeneratorConfig { records: 2000, seed: 3 }).generate();
        let t = Mondrian::new(MondrianConfig { k: 10 }).publish(&d).unwrap();
        assert!(t.num_buckets() >= 50, "got {}", t.num_buckets());
        assert!(t.buckets().all(|b| b.size() >= 10));
        assert_eq!(t.total_records(), 2000);
    }

    #[test]
    fn k_larger_than_data_rejected() {
        let d = synthetic_dataset(&WorkloadConfig { records: 5, ..Default::default() });
        assert!(matches!(
            Mondrian::new(MondrianConfig { k: 10 }).partition(&d),
            Err(AnonymizeError::TooFewRecords { .. })
        ));
    }

    #[test]
    fn single_class_when_unsplittable() {
        // 12 identical records: no attribute has spread, one class.
        let mut d = synthetic_dataset(&WorkloadConfig { records: 1, ..Default::default() });
        let row: Vec<u16> = d.record(0).values().to_vec();
        for _ in 0..11 {
            d.push(&row).unwrap();
        }
        let classes = Mondrian::new(MondrianConfig { k: 3 }).partition(&d).unwrap();
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].len(), 12);
    }
}
