//! (Relaxed) distinct ℓ-diversity verification.

use pm_microdata::value::Value;

use crate::published::PublishedTable;

/// Returns the `exempt_top` most frequent SA values of a published table —
/// the values footnote 3 of the paper treats as "not sensitive".
pub fn most_frequent_sa(table: &PublishedTable, exempt_top: usize) -> Vec<Value> {
    let mut counts = vec![0usize; table.sa_cardinality()];
    for b in table.buckets() {
        for &(s, c) in b.sa_counts() {
            counts[s as usize] += c;
        }
    }
    let mut order: Vec<usize> = (0..counts.len()).collect();
    order.sort_by_key(|&s| std::cmp::Reverse(counts[s]));
    order.into_iter().take(exempt_top).map(|s| s as Value).collect()
}

/// Checks relaxed distinct ℓ-diversity: in every bucket, each *non-exempt*
/// SA value occurs at most once and the bucket holds at least `ell` records.
///
/// With `exempt` empty this is plain distinct ℓ-diversity for buckets of
/// exactly `ell` records.
pub fn satisfies_relaxed_diversity(
    table: &PublishedTable,
    ell: usize,
    exempt: &[Value],
) -> bool {
    table.buckets().all(|b| {
        b.size() >= ell
            && b.sa_counts()
                .iter()
                .all(|&(s, c)| c <= 1 || exempt.contains(&s))
    })
}

/// The *effective* ℓ of a bucket: its number of distinct SA values. The
/// minimum over buckets is the table's (distinct) diversity level.
pub fn distinct_diversity(table: &PublishedTable) -> usize {
    table
        .buckets()
        .map(|b| b.distinct_sa())
        .min()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anatomy::{AnatomyBucketizer, AnatomyConfig};
    use pm_datagen::adult::{AdultGenerator, AdultGeneratorConfig};
    use pm_microdata::fixtures::{figure1_bucket_rows, figure1_dataset};

    #[test]
    fn paper_example_is_3_diverse() {
        let d = figure1_dataset();
        let t = PublishedTable::from_partition(&d, &figure1_bucket_rows()).unwrap();
        assert_eq!(distinct_diversity(&t), 3);
        // Bucket 1 repeats flu (code 0), so strict distinctness fails but
        // exempting the most frequent value (flu) passes — footnote 3's rule.
        assert!(!satisfies_relaxed_diversity(&t, 3, &[]));
        let exempt = most_frequent_sa(&t, 1);
        assert_eq!(exempt, vec![0], "flu is the most frequent disease");
        assert!(satisfies_relaxed_diversity(&t, 3, &exempt));
        assert!(!satisfies_relaxed_diversity(&t, 4, &exempt));
    }

    #[test]
    fn adult_bucketization_is_relaxed_5_diverse() {
        let d = AdultGenerator::new(AdultGeneratorConfig::default()).generate();
        let t = AnatomyBucketizer::new(AnatomyConfig { ell: 5, exempt_top: 1 })
            .publish(&d)
            .unwrap();
        let exempt = most_frequent_sa(&t, 1);
        assert!(satisfies_relaxed_diversity(&t, 5, &exempt));
    }

    #[test]
    fn most_frequent_returns_descending_counts() {
        let d = AdultGenerator::new(AdultGeneratorConfig { records: 3000, seed: 5 }).generate();
        let t = AnatomyBucketizer::default().publish(&d).unwrap();
        let top = most_frequent_sa(&t, 3);
        assert_eq!(top.len(), 3);
        let count = |v: Value| -> usize {
            t.buckets().map(|b| b.sa_multiplicity(v)).sum()
        };
        assert!(count(top[0]) >= count(top[1]));
        assert!(count(top[1]) >= count(top[2]));
    }
}
