//! The published (disguised) table `D'` in the paper's abstract form.
//!
//! The table supports **record-level deltas** — [`PublishedTable::insert_record`],
//! [`PublishedTable::retract_record`] and [`PublishedTable::move_record`] —
//! for live-table deployments where `D'` itself evolves (late arrivals,
//! retractions, bucket re-assignments). Buckets are stored behind [`Arc`]s
//! and the QI interner shares its symbol table, so cloning a table for the
//! next epoch is cheap and a delta deep-copies only the buckets it touches.

use std::collections::HashMap;
use std::sync::Arc;

use pm_microdata::dataset::Dataset;
use pm_microdata::qi::{project_qi_sa, QiId, QiInterner};
use pm_microdata::value::Value;

use crate::error::AnonymizeError;

/// One bucket of the published table: the distinct QI symbols (with
/// multiplicity) and the SA multiset. Matches the rows of Figure 1(c).
#[derive(Debug, Clone)]
pub struct BucketView {
    qi_counts: Vec<(QiId, usize)>,
    sa_counts: Vec<(Value, usize)>,
    size: usize,
}

impl BucketView {
    /// Reassembles a bucket from persisted multisets. Both lists must be
    /// strictly ascending by key with non-zero counts, and must describe
    /// the same number of records (every record contributes one QI symbol
    /// occurrence and one SA value occurrence); the size is derived.
    pub fn from_counts(
        qi_counts: Vec<(QiId, usize)>,
        sa_counts: Vec<(Value, usize)>,
    ) -> Result<Self, AnonymizeError> {
        fn check_multiset<K: Copy + Ord + std::fmt::Debug>(
            counts: &[(K, usize)],
            what: &str,
        ) -> Result<usize, AnonymizeError> {
            let mut total = 0usize;
            for (i, &(k, c)) in counts.iter().enumerate() {
                if c == 0 {
                    return Err(AnonymizeError::InconsistentParts {
                        detail: format!("{what} {k:?} has a zero count"),
                    });
                }
                if i > 0 && counts[i - 1].0 >= k {
                    return Err(AnonymizeError::InconsistentParts {
                        detail: format!("{what} multiset is not strictly ascending at {k:?}"),
                    });
                }
                total += c;
            }
            Ok(total)
        }
        let nq = check_multiset(&qi_counts, "QI symbol")?;
        let ns = check_multiset(&sa_counts, "SA value")?;
        if nq != ns {
            return Err(AnonymizeError::InconsistentParts {
                detail: format!("bucket holds {nq} QI occurrences but {ns} SA occurrences"),
            });
        }
        Ok(BucketView { qi_counts, sa_counts, size: nq })
    }

    /// Distinct QI symbols with multiplicities, ascending by id.
    pub fn qi_counts(&self) -> &[(QiId, usize)] {
        &self.qi_counts
    }

    /// Distinct SA values with multiplicities, ascending by code.
    pub fn sa_counts(&self) -> &[(Value, usize)] {
        &self.sa_counts
    }

    /// Records in the bucket (`N_b`).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of distinct QI symbols (`g` in Section 5.2).
    pub fn distinct_qi(&self) -> usize {
        self.qi_counts.len()
    }

    /// Number of distinct SA values (`h` in Section 5.2).
    pub fn distinct_sa(&self) -> usize {
        self.sa_counts.len()
    }

    /// Multiplicity of `q` in this bucket (0 if absent).
    pub fn qi_multiplicity(&self, q: QiId) -> usize {
        self.qi_counts
            .binary_search_by_key(&q, |&(id, _)| id)
            .map(|i| self.qi_counts[i].1)
            .unwrap_or(0)
    }

    /// Multiplicity of `s` in this bucket (0 if absent).
    pub fn sa_multiplicity(&self, s: Value) -> usize {
        self.sa_counts
            .binary_search_by_key(&s, |&(v, _)| v)
            .map(|i| self.sa_counts[i].1)
            .unwrap_or(0)
    }

    /// Whether `q` occurs in this bucket.
    pub fn contains_qi(&self, q: QiId) -> bool {
        self.qi_multiplicity(q) > 0
    }

    /// Whether `s` occurs in this bucket.
    pub fn contains_sa(&self, s: Value) -> bool {
        self.sa_multiplicity(s) > 0
    }

    /// Adds one `(q, s)` record occurrence, keeping both count lists sorted.
    fn add(&mut self, q: QiId, s: Value) {
        match self.qi_counts.binary_search_by_key(&q, |&(id, _)| id) {
            Ok(i) => self.qi_counts[i].1 += 1,
            Err(i) => self.qi_counts.insert(i, (q, 1)),
        }
        match self.sa_counts.binary_search_by_key(&s, |&(v, _)| v) {
            Ok(i) => self.sa_counts[i].1 += 1,
            Err(i) => self.sa_counts.insert(i, (s, 1)),
        }
        self.size += 1;
    }

    /// Removes one `(q, s)` record occurrence; entries whose count drops to
    /// zero are removed entirely (the bucket looks exactly like one built
    /// without that record). Callers validate presence first.
    fn remove(&mut self, q: QiId, s: Value) {
        let i = self
            .qi_counts
            .binary_search_by_key(&q, |&(id, _)| id)
            .expect("caller validated QI presence");
        if self.qi_counts[i].1 == 1 {
            self.qi_counts.remove(i);
        } else {
            self.qi_counts[i].1 -= 1;
        }
        let i = self
            .sa_counts
            .binary_search_by_key(&s, |&(v, _)| v)
            .expect("caller validated SA presence");
        if self.sa_counts[i].1 == 1 {
            self.sa_counts.remove(i);
        } else {
            self.sa_counts[i].1 -= 1;
        }
        self.size -= 1;
    }
}

/// The published table `D'`: every record's QI symbol and bucket id are
/// public; SA values are only known as per-bucket multisets.
///
/// All the probabilities the paper reads "directly from the bucketized
/// data" — `P(Q)`, `P(Q, B)`, `P(S, B)` — are methods here.
#[derive(Debug, Clone)]
pub struct PublishedTable {
    interner: QiInterner,
    /// `Arc` per bucket: an epoch clone shares every bucket and a record
    /// delta copies only the buckets it touches.
    buckets: Vec<Arc<BucketView>>,
    sa_cardinality: usize,
    total: usize,
}

impl PublishedTable {
    /// Builds `D'` from the original data and a bucket partition (lists of
    /// row indices). Verifies the lists partition `0..data.len()`.
    pub fn from_partition(
        data: &Dataset,
        partition: &[Vec<usize>],
    ) -> Result<Self, AnonymizeError> {
        let mut seen = vec![false; data.len()];
        let mut covered = 0usize;
        for rows in partition {
            for &r in rows {
                if r >= data.len() || seen[r] {
                    return Err(AnonymizeError::NotAPartition);
                }
                seen[r] = true;
                covered += 1;
            }
        }
        if covered != data.len() {
            return Err(AnonymizeError::NotAPartition);
        }

        let sa_cardinality = data.schema().sa_cardinality()?;
        let (interner, pairs) = project_qi_sa(data)?;

        let mut buckets = Vec::with_capacity(partition.len());
        for rows in partition {
            let mut qi: HashMap<QiId, usize> = HashMap::new();
            let mut sa: HashMap<Value, usize> = HashMap::new();
            for &r in rows {
                let (q, s) = pairs[r];
                *qi.entry(q).or_default() += 1;
                *sa.entry(s).or_default() += 1;
            }
            let mut qi_counts: Vec<_> = qi.into_iter().collect();
            qi_counts.sort_unstable();
            let mut sa_counts: Vec<_> = sa.into_iter().collect();
            sa_counts.sort_unstable();
            buckets.push(Arc::new(BucketView { qi_counts, sa_counts, size: rows.len() }));
        }

        Ok(Self { interner, buckets, sa_cardinality, total: data.len() })
    }

    /// Reassembles a published table from persisted parts: the QI symbol
    /// table, the bucket views and the SA domain cardinality. The record
    /// total is derived from the bucket sizes (it can legitimately differ
    /// from the interner's occurrence total — [`Self::truncate_buckets`]
    /// keeps the full symbol table).
    ///
    /// # Errors
    /// [`AnonymizeError::InconsistentParts`] if any bucket references a QI
    /// symbol outside the interner or an SA value outside the domain, or if
    /// the interner's tuples are ragged (mixed arity).
    pub fn from_parts(
        interner: QiInterner,
        buckets: Vec<Arc<BucketView>>,
        sa_cardinality: usize,
    ) -> Result<Self, AnonymizeError> {
        if interner.distinct() > 0 {
            let arity = interner.tuple(0).len();
            if (1..interner.distinct()).any(|i| interner.tuple(i).len() != arity) {
                return Err(AnonymizeError::InconsistentParts {
                    detail: "interned QI tuples have mixed arity".into(),
                });
            }
        }
        let mut total = 0usize;
        for (b, bucket) in buckets.iter().enumerate() {
            if let Some(&(q, _)) = bucket.qi_counts.last() {
                if q >= interner.distinct() {
                    return Err(AnonymizeError::InconsistentParts {
                        detail: format!(
                            "bucket {b} references QI symbol {q} but only {} are interned",
                            interner.distinct()
                        ),
                    });
                }
            }
            if let Some(&(s, _)) = bucket.sa_counts.last() {
                if s as usize >= sa_cardinality {
                    return Err(AnonymizeError::InconsistentParts {
                        detail: format!(
                            "bucket {b} references SA value {s} outside the domain \
                             (cardinality {sa_cardinality})"
                        ),
                    });
                }
            }
            total += bucket.size;
        }
        Ok(Self { interner, buckets, sa_cardinality, total })
    }

    /// The QI symbol table.
    pub fn interner(&self) -> &QiInterner {
        &self.interner
    }

    /// Number of buckets `m`.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Total records `N`.
    pub fn total_records(&self) -> usize {
        self.total
    }

    /// SA domain cardinality.
    pub fn sa_cardinality(&self) -> usize {
        self.sa_cardinality
    }

    /// The bucket at index `b`.
    pub fn bucket(&self, b: usize) -> &BucketView {
        &self.buckets[b]
    }

    /// Iterates buckets.
    pub fn buckets(&self) -> impl Iterator<Item = &BucketView> {
        self.buckets.iter().map(|b| b.as_ref())
    }

    /// `P(q, b)` — read directly off the published data.
    pub fn p_qi_bucket(&self, q: QiId, b: usize) -> f64 {
        self.buckets[b].qi_multiplicity(q) as f64 / self.total as f64
    }

    /// `P(s, b)` — read directly off the published data.
    pub fn p_sa_bucket(&self, s: Value, b: usize) -> f64 {
        self.buckets[b].sa_multiplicity(s) as f64 / self.total as f64
    }

    /// `P(q)` — the marginal QI distribution (undistorted by bucketization).
    pub fn p_qi(&self, q: QiId) -> f64 {
        self.interner.probability(q)
    }

    /// Buckets containing QI symbol `q`.
    pub fn buckets_with_qi(&self, q: QiId) -> Vec<usize> {
        (0..self.buckets.len())
            .filter(|&b| self.buckets[b].contains_qi(q))
            .collect()
    }

    /// Buckets containing SA value `s`.
    pub fn buckets_with_sa(&self, s: Value) -> Vec<usize> {
        (0..self.buckets.len())
            .filter(|&b| self.buckets[b].contains_sa(s))
            .collect()
    }

    /// Restricts the table to its first `n` buckets, renormalising nothing —
    /// used by the Figure 7(b)/(c) data-size sweeps, which truncate the
    /// bucket list. The interner is shared unchanged (symbols keep their
    /// ids); `total_records` shrinks to the retained rows.
    pub fn truncate_buckets(&self, n: usize) -> Self {
        let n = n.min(self.buckets.len());
        let buckets: Vec<Arc<BucketView>> = self.buckets[..n].to_vec();
        let total = buckets.iter().map(|b| b.size).sum();
        Self {
            interner: self.interner.clone(),
            buckets,
            sa_cardinality: self.sa_cardinality,
            total,
        }
    }

    // ---- record-level deltas (live tables) ----

    fn check_bucket(&self, b: usize) -> Result<(), AnonymizeError> {
        if b >= self.buckets.len() {
            return Err(AnonymizeError::InvalidDelta {
                detail: format!(
                    "bucket {b} out of range: the table has {} buckets",
                    self.buckets.len()
                ),
            });
        }
        Ok(())
    }

    fn check_sa(&self, sa: Value) -> Result<(), AnonymizeError> {
        if sa as usize >= self.sa_cardinality {
            return Err(AnonymizeError::InvalidDelta {
                detail: format!(
                    "SA value {sa} outside the published domain (cardinality {})",
                    self.sa_cardinality
                ),
            });
        }
        Ok(())
    }

    /// Validates a retraction: bucket `b` must hold at least one occurrence
    /// of both `q` and `sa`. (The pairing inside the bucket is exactly what
    /// `D'` hides, so a retraction is the *caller's claim* that such a
    /// record exists — the multisets are all the table can check.)
    fn check_presence(&self, q: QiId, sa: Value, b: usize) -> Result<(), AnonymizeError> {
        let bucket = &self.buckets[b];
        if !bucket.contains_qi(q) {
            return Err(AnonymizeError::InvalidDelta {
                detail: format!("bucket {b} holds no record with QI symbol {q}"),
            });
        }
        if !bucket.contains_sa(sa) {
            return Err(AnonymizeError::InvalidDelta {
                detail: format!("bucket {b} holds no record with SA value {sa}"),
            });
        }
        Ok(())
    }

    /// Inserts one record `(qi tuple, sa)` into bucket `b` (a late
    /// arrival), interning the QI tuple if it is new. Returns the record's
    /// QI symbol. Only bucket `b` is deep-copied; every other bucket stays
    /// shared with clones of the pre-delta table.
    pub fn insert_record(
        &mut self,
        qi: &[Value],
        sa: Value,
        b: usize,
    ) -> Result<QiId, AnonymizeError> {
        self.check_bucket(b)?;
        self.check_sa(sa)?;
        // Every published tuple has the schema's QI arity; a ragged tuple
        // would poison downstream antecedent matching.
        if self.interner.distinct() > 0 && qi.len() != self.interner.tuple(0).len() {
            return Err(AnonymizeError::InvalidDelta {
                detail: format!(
                    "QI tuple {qi:?} has {} values but the published table's tuples have {}",
                    qi.len(),
                    self.interner.tuple(0).len()
                ),
            });
        }
        let q = self.interner.observe(qi);
        Arc::make_mut(&mut self.buckets[b]).add(q, sa);
        self.total += 1;
        Ok(q)
    }

    /// Retracts one record `(qi tuple, sa)` from bucket `b`. The QI symbol
    /// keeps its id even if its last occurrence disappears (ids are stable
    /// across deltas). Returns the record's QI symbol.
    pub fn retract_record(
        &mut self,
        qi: &[Value],
        sa: Value,
        b: usize,
    ) -> Result<QiId, AnonymizeError> {
        self.check_bucket(b)?;
        self.check_sa(sa)?;
        let q = self.interner.lookup(qi).ok_or_else(|| AnonymizeError::InvalidDelta {
            detail: format!("QI tuple {qi:?} was never published"),
        })?;
        self.check_presence(q, sa, b)?;
        self.interner.retract(q)?;
        Arc::make_mut(&mut self.buckets[b]).remove(q, sa);
        self.total -= 1;
        Ok(q)
    }

    /// Moves one record `(qi tuple, sa)` from bucket `from` to bucket `to`
    /// (a bucket re-assignment). Global counts — `N`, the QI marginal —
    /// are unchanged; only the two buckets are deep-copied. Returns the
    /// record's QI symbol.
    pub fn move_record(
        &mut self,
        qi: &[Value],
        sa: Value,
        from: usize,
        to: usize,
    ) -> Result<QiId, AnonymizeError> {
        self.check_bucket(from)?;
        self.check_bucket(to)?;
        if from == to {
            return Err(AnonymizeError::InvalidDelta {
                detail: format!("move within bucket {from} is a no-op"),
            });
        }
        self.check_sa(sa)?;
        let q = self.interner.lookup(qi).ok_or_else(|| AnonymizeError::InvalidDelta {
            detail: format!("QI tuple {qi:?} was never published"),
        })?;
        self.check_presence(q, sa, from)?;
        Arc::make_mut(&mut self.buckets[from]).remove(q, sa);
        Arc::make_mut(&mut self.buckets[to]).add(q, sa);
        Ok(q)
    }

    /// Whether bucket `b` is shared (pointer-equal) with the same bucket of
    /// `other` — the structural-sharing observability hook the epoch tests
    /// use to prove a delta copied only its touched buckets.
    pub fn bucket_shared_with(&self, other: &Self, b: usize) -> bool {
        Arc::ptr_eq(&self.buckets[b], &other.buckets[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_microdata::fixtures::{figure1_bucket_rows, figure1_dataset};

    fn paper_table() -> PublishedTable {
        let d = figure1_dataset();
        PublishedTable::from_partition(&d, &figure1_bucket_rows()).unwrap()
    }

    #[test]
    fn figure1c_shape() {
        let t = paper_table();
        assert_eq!(t.num_buckets(), 3);
        assert_eq!(t.total_records(), 10);
        // Bucket 1 of the paper: {q1 ×2, q2, q3} and SA {s1, s2 ×2, s3}.
        let b0 = t.bucket(0);
        assert_eq!(b0.size(), 4);
        assert_eq!(b0.distinct_qi(), 3);
        assert_eq!(b0.distinct_sa(), 3);
        let q1 = t.interner().lookup(&[0, 0]).unwrap();
        assert_eq!(b0.qi_multiplicity(q1), 2);
        // s2 = pneumonia? Figure 1(c) maps s1=flu? Codes: flu=0, pneumonia=1,
        // breast cancer=2. Bucket 1 diseases: flu, pneumonia, breast cancer,
        // flu → counts {flu:2, pneumonia:1, bc:1}.
        assert_eq!(b0.sa_multiplicity(0), 2);
        assert_eq!(b0.sa_multiplicity(1), 1);
        assert_eq!(b0.sa_multiplicity(2), 1);
    }

    #[test]
    fn published_probabilities() {
        let t = paper_table();
        let q1 = t.interner().lookup(&[0, 0]).unwrap();
        // P(q1, b=0) = 2/10 (QI-invariant example in Section 5.2).
        assert!((t.p_qi_bucket(q1, 0) - 0.2).abs() < 1e-12);
        // P(q1) = 3/10 overall.
        assert!((t.p_qi(q1) - 0.3).abs() < 1e-12);
        // Bucket 2 contains one HIV (code 3): P(s4, 2) = 1/10 — the paper's
        // SA-invariant example in Section 5.2 (bucket index 1 here, code 3).
        assert!((t.p_sa_bucket(3, 1) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn bucket_membership_queries() {
        let t = paper_table();
        let q1 = t.interner().lookup(&[0, 0]).unwrap();
        assert_eq!(t.buckets_with_qi(q1), vec![0, 1]);
        // lung cancer (code 4) only in the last bucket.
        assert_eq!(t.buckets_with_sa(4), vec![2]);
        assert!(!t.bucket(2).contains_qi(q1));
    }

    #[test]
    fn partition_validation() {
        let d = figure1_dataset();
        // Missing a record.
        let r = PublishedTable::from_partition(&d, &[vec![0, 1]]);
        assert_eq!(r.unwrap_err(), AnonymizeError::NotAPartition);
        // Duplicate.
        let r = PublishedTable::from_partition(
            &d,
            &[vec![0, 1, 2, 3, 4, 5, 6, 7, 8], vec![8, 9]],
        );
        assert_eq!(r.unwrap_err(), AnonymizeError::NotAPartition);
        // Out of range.
        let r = PublishedTable::from_partition(&d, &[vec![0, 99]]);
        assert_eq!(r.unwrap_err(), AnonymizeError::NotAPartition);
    }

    #[test]
    fn truncation_keeps_prefix() {
        let t = paper_table();
        let t2 = t.truncate_buckets(2);
        assert_eq!(t2.num_buckets(), 2);
        assert_eq!(t2.total_records(), 7);
        assert_eq!(t2.bucket(0).size(), t.bucket(0).size());
    }

    /// Record deltas mutate exactly the touched buckets — everything else
    /// stays pointer-shared with the pre-delta clone — and a mutated table
    /// is indistinguishable from one built with the post-delta records.
    #[test]
    fn record_deltas_cow_touched_buckets() {
        let before = paper_table();
        let mut t = before.clone();
        // Insert a (female, graduate) flu record into bucket 2.
        let q = t.insert_record(&[1, 3], 0, 1).unwrap();
        assert_eq!(t.total_records(), 11);
        assert_eq!(
            t.bucket(1).qi_multiplicity(q),
            before.bucket(1).qi_multiplicity(q) + 1
        );
        assert_eq!(
            t.bucket(1).sa_multiplicity(0),
            before.bucket(1).sa_multiplicity(0) + 1
        );
        assert_eq!(t.interner().count(q), before.interner().count(q) + 1);
        assert!(t.bucket_shared_with(&before, 0), "bucket 0 untouched");
        assert!(!t.bucket_shared_with(&before, 1), "bucket 1 copied");
        assert!(t.bucket_shared_with(&before, 2), "bucket 2 untouched");
        // Retract it again: bucket 2 looks exactly like before the insert.
        t.retract_record(&[1, 3], 0, 1).unwrap();
        assert_eq!(t.total_records(), 10);
        assert_eq!(t.bucket(1).qi_multiplicity(q), before.bucket(1).qi_multiplicity(q));
        assert_eq!(t.interner().count(q), before.interner().count(q));
        assert_eq!(t.interner().lookup(&[1, 3]), Some(q), "id survives retraction");
        assert_eq!(
            t.bucket(1).qi_counts(),
            before.bucket(1).qi_counts(),
            "retraction restores the multiset"
        );
        assert_eq!(t.bucket(1).sa_counts(), before.bucket(1).sa_counts());
    }

    #[test]
    fn move_record_preserves_global_counts() {
        let mut t = paper_table();
        let q1 = t.interner().lookup(&[0, 0]).unwrap();
        let total_before = t.total_records();
        let count_before = t.interner().count(q1);
        // Move a (q1, flu) record from bucket 1 to bucket 3.
        t.move_record(&[0, 0], 0, 0, 2).unwrap();
        assert_eq!(t.total_records(), total_before);
        assert_eq!(t.interner().count(q1), count_before);
        assert_eq!(t.bucket(0).qi_multiplicity(q1), 1);
        assert_eq!(t.bucket(2).qi_multiplicity(q1), 1);
        assert_eq!(t.bucket(0).size() + t.bucket(2).size(), 4 + 3);
    }

    #[test]
    fn invalid_deltas_are_rejected() {
        let mut t = paper_table();
        // Unknown bucket / SA domain / tuple.
        assert!(matches!(
            t.insert_record(&[0, 0], 0, 99),
            Err(AnonymizeError::InvalidDelta { .. })
        ));
        assert!(matches!(
            t.insert_record(&[0, 0], 200, 0),
            Err(AnonymizeError::InvalidDelta { .. })
        ));
        // Ragged QI tuples (wrong arity) would poison antecedent matching.
        assert!(matches!(
            t.insert_record(&[0, 0, 0], 0, 0),
            Err(AnonymizeError::InvalidDelta { .. })
        ));
        assert!(matches!(
            t.retract_record(&[9, 9], 0, 0),
            Err(AnonymizeError::InvalidDelta { .. })
        ));
        // Bucket 3 has no breast cancer (code 2): retraction is a lie.
        assert!(matches!(
            t.retract_record(&[0, 3], 2, 2),
            Err(AnonymizeError::InvalidDelta { .. })
        ));
        // Same-bucket moves are no-ops and rejected.
        assert!(matches!(
            t.move_record(&[0, 0], 0, 0, 0),
            Err(AnonymizeError::InvalidDelta { .. })
        ));
        // A failed delta leaves the table untouched.
        assert_eq!(t.total_records(), 10);
    }

    /// Decompose → `from_parts` reproduces an observably identical table,
    /// and stays fully functional (deltas apply on the reassembled copy).
    #[test]
    fn from_parts_round_trips_the_paper_table() {
        let t = paper_table();
        let buckets: Vec<Arc<BucketView>> = t
            .buckets()
            .map(|b| {
                Arc::new(
                    BucketView::from_counts(b.qi_counts().to_vec(), b.sa_counts().to_vec())
                        .unwrap(),
                )
            })
            .collect();
        let mut rebuilt =
            PublishedTable::from_parts(t.interner().clone(), buckets, t.sa_cardinality())
                .unwrap();
        assert_eq!(rebuilt.num_buckets(), t.num_buckets());
        assert_eq!(rebuilt.total_records(), t.total_records());
        assert_eq!(rebuilt.sa_cardinality(), t.sa_cardinality());
        for b in 0..t.num_buckets() {
            assert_eq!(rebuilt.bucket(b).qi_counts(), t.bucket(b).qi_counts());
            assert_eq!(rebuilt.bucket(b).sa_counts(), t.bucket(b).sa_counts());
        }
        rebuilt.insert_record(&[1, 3], 0, 1).unwrap();
        assert_eq!(rebuilt.total_records(), t.total_records() + 1);
    }

    #[test]
    fn from_parts_rejects_inconsistencies() {
        // Zero counts, unsorted keys, QI/SA total mismatch.
        assert!(matches!(
            BucketView::from_counts(vec![(0, 0)], vec![(0, 1)]),
            Err(AnonymizeError::InconsistentParts { .. })
        ));
        assert!(matches!(
            BucketView::from_counts(vec![(1, 1), (0, 1)], vec![(0, 2)]),
            Err(AnonymizeError::InconsistentParts { .. })
        ));
        assert!(matches!(
            BucketView::from_counts(vec![(0, 2)], vec![(0, 1)]),
            Err(AnonymizeError::InconsistentParts { .. })
        ));

        let t = paper_table();
        let oob_qi = Arc::new(
            BucketView::from_counts(vec![(t.interner().distinct(), 1)], vec![(0, 1)]).unwrap(),
        );
        assert!(matches!(
            PublishedTable::from_parts(t.interner().clone(), vec![oob_qi], t.sa_cardinality()),
            Err(AnonymizeError::InconsistentParts { .. })
        ));
        let oob_sa = Arc::new(
            BucketView::from_counts(
                vec![(0, 1)],
                vec![(t.sa_cardinality() as Value, 1)],
            )
            .unwrap(),
        );
        assert!(matches!(
            PublishedTable::from_parts(t.interner().clone(), vec![oob_sa], t.sa_cardinality()),
            Err(AnonymizeError::InconsistentParts { .. })
        ));
        let ragged = QiInterner::from_parts(vec![vec![0, 0], vec![1]], vec![1, 1]);
        assert!(matches!(
            PublishedTable::from_parts(ragged, vec![], 5),
            Err(AnonymizeError::InconsistentParts { .. })
        ));
    }

    #[test]
    fn bucket_totals_consistent() {
        let t = paper_table();
        for b in t.buckets() {
            let qi_total: usize = b.qi_counts().iter().map(|&(_, c)| c).sum();
            let sa_total: usize = b.sa_counts().iter().map(|&(_, c)| c).sum();
            assert_eq!(qi_total, b.size());
            assert_eq!(sa_total, b.size());
        }
    }
}
