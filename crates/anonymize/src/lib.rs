//! # pm-anonymize
//!
//! The bucketization substrate (the paper's publication mechanism).
//!
//! Bucketization [Xiao & Tao's *Anatomy*; studied further by Martin et al.]
//! partitions records into buckets and, within each bucket, publishes the QI
//! values verbatim but the SA values only as a multiset — breaking the
//! record-level QI↔SA binding. This crate provides:
//!
//! * [`published::PublishedTable`] — the disguised table `D'` in the
//!   abstract form of Figure 1(c): interned `q` symbols per record plus a
//!   per-bucket SA multiset. This is the object the Privacy-MaxEnt engine
//!   consumes.
//! * [`anatomy::AnatomyBucketizer`] — an ℓ-diversity bucketizer using the
//!   sorted round-robin construction, with the paper's footnote-3 rule
//!   (the most frequent SA values may be exempted from the diversity check).
//! * [`ldiv`] — (relaxed) distinct ℓ-diversity verification.
//! * [`assignment`] — enumeration of the bucket *assignments* Λ(b) of
//!   Definition 5.2, used to verify invariant soundness/completeness.
//! * [`pseudonym`] — the pseudonym expansion of Section 6 (Figure 4) for
//!   knowledge about individuals.
//! * [`fixtures`] — the paper's running example as a ready-made `D'`.

pub mod anatomy;
pub mod assignment;
pub mod error;
pub mod fixtures;
pub mod ldiv;
pub mod mondrian;
pub mod pseudonym;
pub mod published;

pub use anatomy::{AnatomyBucketizer, AnatomyConfig};
pub use error::AnonymizeError;
pub use published::PublishedTable;
