//! Property tests for the pm-audit tokenizer: `lex` / `lex_bytes` and the
//! whole `SourceFile::parse` pipeline are total — arbitrary bytes,
//! pathological quote/brace soup, truncated constructs — no input panics,
//! and the line numbers they report stay monotonically nondecreasing (a
//! diagnostic anchored to a line that goes backwards would be garbage).

use pm_audit::lexer::lex_bytes;
use pm_audit::SourceFile;
use proptest::prelude::*;

/// Deterministic byte soup from a seed (the shim has no `Vec<u8>`
/// strategy shrinking anyway, so a xorshift stream is just as good and
/// much faster).
fn bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as u8
        })
        .collect()
}

/// The same stream constrained to the characters most likely to confuse a
/// lexer: quote flavors, escapes, comment openers, braces, newlines.
fn lexer_soup(seed: u64, len: usize) -> String {
    const ALPHABET: &[u8] = b"\"'\\/r#b*{}[]();=.! \nxyz_09";
    bytes(seed, len).iter().map(|b| ALPHABET[*b as usize % ALPHABET.len()] as char).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn arbitrary_bytes_never_panic(seed in 0u64..u64::MAX, len in 0usize..4096) {
        let lexed = lex_bytes(&bytes(seed, len));
        let mut last = 0u32;
        for t in &lexed.tokens {
            prop_assert!(t.line >= last, "token line went backwards");
            last = t.line;
        }
    }

    #[test]
    fn quote_and_comment_soup_never_panics(seed in 0u64..u64::MAX, len in 0usize..2048) {
        let src = lexer_soup(seed, len);
        // The full pipeline: lex, pragma parse, test-region scan, and every
        // registered rule (the soup lands in rule scope on purpose).
        for path in ["crates/serve/src/registry.rs", "crates/solver/src/lbfgs.rs"] {
            let file = SourceFile::parse(path, &src);
            let _ = pm_audit::audit_source(&file);
        }
    }

    #[test]
    fn truncation_never_panics(seed in 0u64..u64::MAX, len in 1usize..512) {
        // Every prefix of valid-ish source: constructs get cut mid-string,
        // mid-comment, mid-raw-fence.
        let src = format!(
            "fn f() {{ let x = \"s{}\"; /* c */ r#\"raw\"# }}",
            lexer_soup(seed, 64)
        );
        let cut = len.min(src.len());
        if src.is_char_boundary(cut) {
            let _ = SourceFile::parse("x.rs", &src[..cut]);
        }
    }
}
