//! A comment / string / raw-string / attribute-aware tokenizer for Rust
//! sources.
//!
//! This is **not** a parser: it produces a flat token stream with line
//! numbers, which is exactly enough for the lexical rules in
//! [`crate::rules`] to reason about guard scopes, call sequences and enum
//! discriminants without pulling `syn` into the registry-less workspace.
//!
//! Contract: [`lex`] and [`lex_bytes`] **never panic**, whatever bytes they
//! are fed (enforced by a proptest in `tests/prop_lexer.rs`). Malformed
//! input — unterminated strings, stray quotes, broken raw-string fences —
//! degrades to best-effort tokens, never to an abort.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`let`, `tenants`, `r#ident` minus the `r#`).
    Ident(String),
    /// Single punctuation character (`.`, `{`, `=` — never combined).
    Punct(char),
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`); contents
    /// are deliberately opaque so nothing inside a string can trip a rule.
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'_`).
    Lifetime,
    /// Numeric literal; `value` is `Some` for plain decimal integers (the
    /// only numeric shape a rule inspects — enum discriminants).
    Num(Option<u128>),
}

/// A token plus the 1-indexed line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-indexed source line.
    pub line: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    #[must_use]
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Whether this token is the exact identifier `name`.
    #[must_use]
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// Whether this token is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }
}

/// A comment with its line span and text (doc comments included — the
/// error-code rule reads variant docs, the pragma parser reads `// pm-audit:`
/// lines).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-indexed line the comment starts on.
    pub line: u32,
    /// 1-indexed line the comment ends on (multi-line block comments).
    pub end_line: u32,
    /// Comment text, delimiters stripped.
    pub text: String,
    /// Whether this is a doc comment (`///`, `//!`, `/** */`, `/*! */`).
    pub doc: bool,
}

/// The result of lexing one source file.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes arbitrary bytes: invalid UTF-8 is replaced lossily, then [`lex`]
/// runs. Never panics.
#[must_use]
pub fn lex_bytes(bytes: &[u8]) -> Lexed {
    lex(&String::from_utf8_lossy(bytes))
}

/// Lexes a source string into tokens and comments. Never panics.
#[must_use]
pub fn lex(src: &str) -> Lexed {
    Lexer { chars: src.chars().collect(), pos: 0, line: 1, out: Lexed::default() }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, tok: Tok, line: u32) {
        self.out.tokens.push(Token { tok, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => {
                    self.bump();
                    self.string_body('"');
                    self.push(Tok::Str, line);
                }
                'r' if matches!(self.peek(1), Some('"' | '#')) && self.is_raw_string(1) => {
                    self.bump();
                    self.raw_string();
                    self.push(Tok::Str, line);
                }
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.bump();
                    self.string_body('"');
                    self.push(Tok::Str, line);
                }
                'b' if self.peek(1) == Some('r') && self.is_raw_string(2) => {
                    self.bump();
                    self.bump();
                    self.raw_string();
                    self.push(Tok::Str, line);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.char_literal();
                    self.push(Tok::Char, line);
                }
                '\'' => self.quote(),
                c if c.is_alphabetic() || c == '_' => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                _ => {
                    self.bump();
                    self.push(Tok::Punct(c), line);
                }
            }
        }
        self.out
    }

    /// Whether the `r` / `br` starting at `self.pos` (hash offset
    /// `offset`) opens a raw string: zero or more `#` then `"`.
    fn is_raw_string(&self, offset: usize) -> bool {
        let mut i = offset;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let doc = matches!(self.peek(0), Some('/' | '!'))
            && !(self.peek(0) == Some('/') && self.peek(1) == Some('/'));
        if doc {
            self.bump();
        }
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { line, end_line: line, text, doc });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let doc = matches!(self.peek(0), Some('*' | '!')) && self.peek(1) != Some('/');
        if doc {
            self.bump();
        }
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
                text.push_str("/*");
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment { line, end_line: self.line, text, doc });
    }

    /// Consumes a (non-raw) string body after the opening quote, honoring
    /// `\"` and `\\` escapes. An unterminated string consumes to EOF.
    fn string_body(&mut self, close: char) {
        while let Some(c) = self.bump() {
            if c == '\\' {
                self.bump(); // the escaped char, whatever it is
            } else if c == close {
                break;
            }
        }
    }

    /// Consumes `#*"…"#*` after the leading `r` has been bumped.
    fn raw_string(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != Some('"') {
            return; // malformed fence; tokens already consumed, move on
        }
        self.bump();
        // Scan for `"` followed by exactly `hashes` `#`s.
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut matched = 0usize;
                while matched < hashes && self.peek(0) == Some('#') {
                    matched += 1;
                    self.bump();
                }
                if matched == hashes {
                    return;
                }
            }
        }
    }

    /// Consumes a char/byte literal after the opening quote has been
    /// *peeked* (first bump here).
    fn char_literal(&mut self) {
        self.bump(); // opening '
        if self.peek(0) == Some('\\') {
            self.bump();
            self.bump();
        } else {
            self.bump();
        }
        if self.peek(0) == Some('\'') {
            self.bump();
        }
    }

    /// `'` — either a char literal or a lifetime.
    fn quote(&mut self) {
        let line = self.line;
        // Escaped char (`'\n'`) → literal. `'x'` → literal. Otherwise
        // (`'a`, `'_`, `'static`) → lifetime.
        if self.peek(1) == Some('\\')
            || (self.peek(2) == Some('\'')
                && self.peek(1).is_some_and(|c| c != '\'' && c != '\\'))
        {
            self.char_literal();
            self.push(Tok::Char, line);
        } else {
            self.bump(); // '
            while self.peek(0).is_some_and(|c| c.is_alphanumeric() || c == '_') {
                self.bump();
            }
            self.push(Tok::Lifetime, line);
        }
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut s = String::new();
        // Raw identifier prefix r#…
        if self.peek(0) == Some('r')
            && self.peek(1) == Some('#')
            && self.peek(2).is_some_and(|c| c.is_alphabetic() || c == '_')
        {
            self.bump();
            self.bump();
        }
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if s.is_empty() {
            // Defensive: a lone alphabetic char should always land above,
            // but never loop without progress on odd Unicode.
            if let Some(c) = self.bump() {
                s.push(c);
            }
        }
        self.push(Tok::Ident(s), line);
    }

    fn number(&mut self) {
        let line = self.line;
        let mut raw = String::new();
        // Prefixed (hex/octal/binary) literals: consume the radix run.
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b' | 'X')) {
            raw.push('0');
            self.bump();
            if let Some(c) = self.bump() {
                raw.push(c);
            }
            while self.peek(0).is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
                if let Some(c) = self.bump() {
                    raw.push(c);
                }
            }
            self.push(Tok::Num(None), line);
            return;
        }
        let mut decimal = true;
        while let Some(c) = self.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                raw.push(c);
                self.bump();
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // Fraction (not a `..` range): float, value opaque.
                decimal = false;
                raw.push(c);
                self.bump();
            } else if c.is_ascii_alphabetic() {
                // Type suffix (u16, f64, e-notation). Opaque unless it is a
                // pure integer-width suffix, which keeps the value parseable.
                if !matches!(c, 'u' | 'i' | 'e' | 'E' | 'f') {
                    break;
                }
                if matches!(c, 'e' | 'E' | 'f') {
                    decimal = false;
                }
                while self.peek(0).is_some_and(|d| d.is_ascii_alphanumeric() || d == '_') {
                    self.bump();
                }
                break;
            } else {
                break;
            }
        }
        let digits: String = raw.chars().filter(|c| *c != '_').collect();
        let value = if decimal { digits.parse::<u128>().ok() } else { None };
        self.push(Tok::Num(value), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let src = r##"
            // a comment with unwrap() inside
            let x = "tenants.write().unwrap()"; /* chain.lock() */
            let y = r#"Instant::now()"#;
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "unwrap" || i == "chain" || i == "Instant"));
        assert!(ids.contains(&"let".to_string()));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("unwrap() inside"));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x.expect_something() }");
        assert!(ids.contains(&"expect_something".to_string()));
        let toks = lex("'a', 'b'");
        assert_eq!(
            toks.tokens.iter().filter(|t| t.tok == Tok::Char).count(),
            2,
            "char literals lex as chars, not lifetimes"
        );
    }

    #[test]
    fn escaped_char_literals() {
        let toks = lex(r"let c = '\''; let d = '\\'; let n = '\n';");
        assert_eq!(toks.tokens.iter().filter(|t| t.tok == Tok::Char).count(), 3);
    }

    #[test]
    fn numbers_parse_decimal_values() {
        let toks = lex("FrameTooLarge = 1, App = 100, Big = 4_096, Hex = 0xFF, F = 1.5");
        let nums: Vec<Option<u128>> = toks
            .tokens
            .iter()
            .filter_map(|t| match t.tok {
                Tok::Num(v) => Some(v),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec![Some(1), Some(100), Some(4096), None, None]);
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn nested_block_comments_and_unterminated_input() {
        let lexed = lex("/* outer /* inner */ still */ code");
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("code")));
        // Unterminated constructs must not panic or loop.
        for src in ["\"abc", "r#\"abc", "/* abc", "'", "b'", "r#", "0x", "1e"] {
            let _ = lex(src);
        }
    }

    #[test]
    fn doc_comments_are_flagged() {
        let lexed = lex("/// Fatal.\npub enum E { A = 1 }\n//! inner\n// plain");
        assert!(lexed.comments[0].doc);
        assert!(lexed.comments[1].doc);
        assert!(!lexed.comments[2].doc);
    }
}
