//! Rendering: the human report (grouped by file, summary line) and the
//! machine-readable JSON-lines report (one object per diagnostic — stable
//! keys, suitable for CI annotation tooling).

use crate::source::{Diagnostic, Severity};

/// The outcome of one audit pass.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// Surviving (unsuppressed) diagnostics, sorted by path, line, rule.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files the pass examined.
    pub files_scanned: usize,
    /// Number of suppressions that matched a diagnostic.
    pub suppressed: usize,
}

impl AuditReport {
    /// Sorts diagnostics into the canonical deterministic order.
    pub fn finish(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            (&a.path, a.line, &a.rule, &a.message).cmp(&(&b.path, b.line, &b.rule, &b.message))
        });
        self.diagnostics.dedup();
    }

    /// Error-severity count.
    #[must_use]
    pub fn errors(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Warning-severity count.
    #[must_use]
    pub fn warnings(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// Whether the pass passes: no errors, and no warnings either when
    /// `deny_warnings` (the CI mode) is set.
    #[must_use]
    pub fn is_clean(&self, deny_warnings: bool) -> bool {
        self.errors() == 0 && (!deny_warnings || self.warnings() == 0)
    }

    /// The human report.
    #[must_use]
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        let mut last_path: Option<&str> = None;
        for d in &self.diagnostics {
            if last_path != Some(d.path.as_str()) {
                if last_path.is_some() {
                    out.push('\n');
                }
                last_path = Some(d.path.as_str());
            }
            out.push_str(&d.to_string());
            out.push('\n');
        }
        if !self.diagnostics.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!(
            "pm-audit: {} file(s) scanned, {} error(s), {} warning(s), {} suppressed\n",
            self.files_scanned,
            self.errors(),
            self.warnings(),
            self.suppressed
        ));
        out
    }

    /// The machine report: one JSON object per line, then a summary object.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{{\"path\":{},\"line\":{},\"severity\":{},\"rule\":{},\"message\":{}}}\n",
                json_str(&d.path),
                d.line,
                json_str(&d.severity.to_string()),
                json_str(&d.rule),
                json_str(&d.message),
            ));
        }
        out.push_str(&format!(
            "{{\"summary\":true,\"files_scanned\":{},\"errors\":{},\"warnings\":{},\"suppressed\":{}}}\n",
            self.files_scanned,
            self.errors(),
            self.warnings(),
            self.suppressed
        ));
        out
    }
}

/// Minimal JSON string encoding (std-only: no serde in this workspace).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AuditReport {
        let mut r = AuditReport {
            diagnostics: vec![
                Diagnostic {
                    rule: "determinism".into(),
                    severity: Severity::Error,
                    path: "b.rs".into(),
                    line: 2,
                    message: "wall clock".into(),
                },
                Diagnostic {
                    rule: "pragma".into(),
                    severity: Severity::Warning,
                    path: "a.rs".into(),
                    line: 9,
                    message: "says \"nothing\"".into(),
                },
            ],
            files_scanned: 2,
            suppressed: 1,
        };
        r.finish();
        r
    }

    #[test]
    fn finish_sorts_deterministically() {
        let r = sample();
        assert_eq!(r.diagnostics[0].path, "a.rs");
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 1);
        assert!(!r.is_clean(false));
        assert!(AuditReport::default().is_clean(true));
    }

    #[test]
    fn json_lines_are_escaped_and_terminated() {
        let j = sample().render_json();
        assert!(j.contains("\\\"nothing\\\""));
        assert_eq!(j.lines().count(), 3, "two diagnostics + summary");
        assert!(j.ends_with('\n'));
        assert!(j.contains("\"summary\":true"));
    }

    #[test]
    fn human_report_carries_the_anchor() {
        let h = sample().render_human();
        assert!(h.contains("b.rs:2: error[determinism]: wall clock"));
        assert!(h.contains("2 file(s) scanned, 1 error(s), 1 warning(s), 1 suppressed"));
    }
}
