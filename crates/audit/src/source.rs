//! The per-file source model rules run against: the token stream, the
//! comment list, parsed `pm-audit` suppression pragmas, and the set of
//! lines that belong to test code (`#[cfg(test)]` modules, `#[test]` fns).

use std::collections::BTreeSet;

use crate::lexer::{lex, Comment, Lexed, Token};

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational/maintenance finding; fails only under
    /// `--deny-warnings` (the CI mode).
    Warning,
    /// Contract violation; always fails the pass unless suppressed.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Warning => write!(f, "warning"),
            Self::Error => write!(f, "error"),
        }
    }
}

/// One finding: rule, severity, and a precise `file:line` anchor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (`lock-order`, `determinism`, …; `pragma` for pragma
    /// hygiene findings).
    pub rule: String,
    /// Severity.
    pub severity: Severity,
    /// Path relative to the workspace root, `/`-separated.
    pub path: String,
    /// 1-indexed line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}[{}]: {}",
            self.path, self.line, self.severity, self.rule, self.message
        )
    }
}

/// A parsed `// pm-audit: allow(rule, reason = "…")` suppression pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// Line the pragma comment sits on.
    pub line: u32,
    /// The rule id it suppresses.
    pub rule: String,
    /// The mandatory justification (`None` = malformed pragma, which is
    /// itself a diagnostic — a suppression without a reason is worthless
    /// at review time).
    pub reason: Option<String>,
}

/// One source file, lexed and indexed for the rules.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// Code tokens.
    pub tokens: Vec<Token>,
    /// Comments (the error-code rule reads variant doc comments).
    pub comments: Vec<Comment>,
    /// Suppression pragmas, in line order.
    pub pragmas: Vec<Pragma>,
    /// Lines covered by `#[cfg(test)]` / `#[test]` items.
    test_lines: BTreeSet<u32>,
}

impl SourceFile {
    /// Lexes and indexes `text` as `rel_path`.
    #[must_use]
    pub fn parse(rel_path: &str, text: &str) -> Self {
        let Lexed { tokens, comments } = lex(text);
        let pragmas = comments.iter().filter_map(parse_pragma).collect();
        let test_lines = test_regions(&tokens);
        Self { rel_path: rel_path.replace('\\', "/"), tokens, comments, pragmas, test_lines }
    }

    /// Whether `line` lies inside test-only code, which the panic-policy
    /// rule exempts (tests *should* unwrap).
    #[must_use]
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_lines.contains(&line)
    }
}

/// Parses one comment as a suppression pragma, if it is one.
///
/// Grammar: `pm-audit: allow(RULE)` or
/// `pm-audit: allow(RULE, reason = "TEXT")`. A recognised-but-malformed
/// pragma yields `reason: None` (or an empty rule), which the engine turns
/// into a `pragma` diagnostic rather than silently ignoring a suppression
/// the author believed was active.
fn parse_pragma(c: &Comment) -> Option<Pragma> {
    let text = c.text.trim();
    let rest = text.strip_prefix("pm-audit:")?.trim_start();
    let line = c.line;
    let Some(args) = rest.strip_prefix("allow(") else {
        return Some(Pragma { line, rule: String::new(), reason: None });
    };
    let Some(close) = args.rfind(')') else {
        return Some(Pragma { line, rule: String::new(), reason: None });
    };
    let args = &args[..close];
    let (rule, tail) = match args.split_once(',') {
        Some((r, t)) => (r.trim(), t.trim()),
        None => (args.trim(), ""),
    };
    let reason = tail.strip_prefix("reason").and_then(|t| {
        let t = t.trim_start().strip_prefix('=')?.trim_start();
        let t = t.strip_prefix('"')?;
        let end = t.rfind('"')?;
        let reason = t[..end].trim();
        (!reason.is_empty()).then(|| reason.to_string())
    });
    Some(Pragma { line, rule: rule.to_string(), reason })
}

/// Collects the lines covered by test-gated items: an attribute whose
/// tokens contain `test` (and not `not`, so `#[cfg(not(test))]` stays
/// production code) marks the item it precedes — everything up to the
/// matching close brace of the item's body — as test code.
fn test_regions(tokens: &[Token]) -> BTreeSet<u32> {
    let mut lines = BTreeSet::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        // Scan the attribute's bracket group.
        let attr_line = tokens[i].line;
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut has_test = false;
        let mut has_not = false;
        while j < tokens.len() && depth > 0 {
            let t = &tokens[j];
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth -= 1;
            } else if t.is_ident("test") {
                has_test = true;
            } else if t.is_ident("not") {
                has_not = true;
            }
            j += 1;
        }
        if !has_test || has_not {
            i = j;
            continue;
        }
        // Find the item body: the first `{` before a `;` ends the header.
        let mut k = j;
        let mut body_start = None;
        while k < tokens.len() {
            if tokens[k].is_punct('{') {
                body_start = Some(k);
                break;
            }
            if tokens[k].is_punct(';') {
                break; // item without a body (e.g. a gated `use`)
            }
            k += 1;
        }
        let Some(open) = body_start else {
            // Cover just the attribute + header line span.
            for t in &tokens[i..k.min(tokens.len())] {
                lines.insert(t.line);
            }
            i = k;
            continue;
        };
        let mut depth = 0usize;
        let mut end = tokens.len();
        for (idx, t) in tokens.iter().enumerate().skip(open) {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    end = idx + 1;
                    break;
                }
            }
        }
        let end_line = tokens.get(end.saturating_sub(1)).map_or(attr_line, |t| t.line);
        for l in attr_line..=end_line {
            lines.insert(l);
        }
        i = end;
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pragma_round_trip() {
        let f = SourceFile::parse(
            "x.rs",
            "let a = 1; // pm-audit: allow(determinism, reason = \"telemetry only\")\n\
             // pm-audit: allow(lock-order)\n\
             // pm-audit: allow(panic-policy, reason = \"\")\n\
             // not a pragma\n",
        );
        assert_eq!(f.pragmas.len(), 3);
        assert_eq!(f.pragmas[0].rule, "determinism");
        assert_eq!(f.pragmas[0].reason.as_deref(), Some("telemetry only"));
        assert_eq!(f.pragmas[1].rule, "lock-order");
        assert_eq!(f.pragmas[1].reason, None, "missing reason is recorded as such");
        assert_eq!(f.pragmas[2].reason, None, "empty reason counts as missing");
    }

    #[test]
    fn test_regions_cover_gated_items() {
        let src = "\
fn prod() {\n\
    x.unwrap();\n\
}\n\
#[cfg(test)]\n\
mod tests {\n\
    #[test]\n\
    fn t() {\n\
        y.unwrap();\n\
    }\n\
}\n\
fn prod2() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.in_test_code(2));
        assert!(f.in_test_code(4));
        assert!(f.in_test_code(8));
        assert!(!f.in_test_code(11));
    }

    #[test]
    fn cfg_not_test_is_production() {
        let f = SourceFile::parse("x.rs", "#[cfg(not(test))]\nfn p() {\n    q();\n}\n");
        assert!(!f.in_test_code(3));
    }
}
