//! # pm-audit — project-specific static analysis
//!
//! A std-only, dependency-free lint pass that mechanically enforces the
//! contracts this workspace's correctness rests on but `rustc`/`clippy`
//! cannot see:
//!
//! * **lock-order** — never acquire the serve registry's chain lock under
//!   a live `tenants` guard (the PR 7 AB-BA deadlock class);
//! * **determinism** — no wall-clock reads or hash-ordered iteration on
//!   the solve/compile paths (the bit-replayability guarantee);
//! * **panic-policy** — no `unwrap`/`expect`/panics/unchecked indexing in
//!   the serve hot paths (one panicking worker poisons every tenant);
//! * **error-code-range** — the wire `ErrorCode` keeps its fatal(<100) /
//!   app(>=100) split, unique explicit discriminants, and a faithful
//!   `from_code` inverse;
//! * **shim-hygiene** — manifests reach `rand`/`proptest`/`criterion`
//!   only through the vendored `crates/shims/` workspace entries.
//!
//! The engine lexes each source (comment/string/raw-string/attribute
//! aware — see [`lexer`]), runs every rule whose scope matches, then
//! applies inline suppression pragmas:
//!
//! ```text
//! self.telemetry = start.elapsed(); // pm-audit: allow(determinism, reason = "telemetry only")
//! ```
//!
//! A pragma suppresses diagnostics of the named rule on its own line or
//! the next code line — and the `reason` is **mandatory**: a suppression
//! that cannot say why it is safe is itself a diagnostic, and a pragma
//! that suppresses nothing is a warning so dead suppressions cannot
//! accumulate. Run it as `pm audit` (human or `--json` output, nonzero
//! exit on findings) or via the tier-1 integration test
//! `tests/test_audit_workspace.rs`.

pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;

use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};

pub use report::AuditReport;
pub use source::{Diagnostic, Pragma, Severity, SourceFile};

/// Audits one lexed source file: runs every in-scope rule, applies the
/// suppression pragmas, and appends pragma-hygiene findings. Returns the
/// surviving diagnostics plus the number suppressed.
#[must_use]
pub fn audit_source(file: &SourceFile) -> (Vec<Diagnostic>, usize) {
    let mut raw = Vec::new();
    for rule in rules::SOURCE_RULES {
        if (rule.applies)(&file.rel_path) {
            (rule.check)(file, &mut raw);
        }
    }

    // A well-formed pragma (known rule + reason) covers its own line and
    // the next line that holds code.
    let mut used = vec![false; file.pragmas.len()];
    let mut out = Vec::new();
    let mut suppressed = 0usize;
    for d in raw {
        let mut hit = None;
        for (pi, p) in file.pragmas.iter().enumerate() {
            if p.rule == d.rule
                && p.reason.is_some()
                && rules::is_known_rule(&p.rule)
                && covered_lines(file, p.line).contains(&d.line)
            {
                hit = Some(pi);
                break;
            }
        }
        match hit {
            Some(pi) => {
                used[pi] = true;
                suppressed += 1;
            }
            None => out.push(d),
        }
    }

    // Pragma hygiene: malformed or unknown-rule pragmas are errors (the
    // author believes a suppression is active; it is not), reason-less
    // pragmas are errors (unreviewable), unused pragmas are warnings
    // (stale suppressions hide future regressions).
    for (pi, p) in file.pragmas.iter().enumerate() {
        if p.rule.is_empty() {
            out.push(pragma_diag(
                file,
                p.line,
                Severity::Error,
                "malformed pm-audit pragma; the form is \
                 `pm-audit: allow(rule, reason = \"…\")`",
            ));
        } else if !rules::is_known_rule(&p.rule) {
            out.push(pragma_diag(
                file,
                p.line,
                Severity::Error,
                &format!(
                    "pragma names unknown rule `{}`; known rules: {}",
                    p.rule,
                    rules::catalog()
                        .iter()
                        .map(|(id, _)| *id)
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            ));
        } else if p.reason.is_none() {
            out.push(pragma_diag(
                file,
                p.line,
                Severity::Error,
                &format!(
                    "suppression of `{}` carries no reason; every pragma must say \
                     why the finding is safe (`reason = \"…\"`)",
                    p.rule
                ),
            ));
        } else if !used[pi] {
            out.push(pragma_diag(
                file,
                p.line,
                Severity::Warning,
                &format!(
                    "pragma suppresses nothing: no `{}` finding on this line or \
                     the next code line; delete it so stale suppressions cannot \
                     mask future regressions",
                    p.rule
                ),
            ));
        }
    }
    (out, suppressed)
}

/// The lines a pragma on `pragma_line` covers: a trailing pragma (code on
/// the same line) covers exactly that line; a standalone pragma covers the
/// next line holding a code token.
fn covered_lines(file: &SourceFile, pragma_line: u32) -> BTreeSet<u32> {
    let mut lines = BTreeSet::new();
    lines.insert(pragma_line);
    let trailing = file.tokens.iter().any(|t| t.line == pragma_line);
    if !trailing {
        if let Some(next) =
            file.tokens.iter().map(|t| t.line).filter(|l| *l > pragma_line).min()
        {
            lines.insert(next);
        }
    }
    lines
}

fn pragma_diag(file: &SourceFile, line: u32, severity: Severity, message: &str) -> Diagnostic {
    Diagnostic {
        rule: "pragma".to_string(),
        severity,
        path: file.rel_path.clone(),
        line,
        message: message.to_string(),
    }
}

/// Audits one manifest. Manifest findings are not pragma-suppressible —
/// a shim bypass has no safe justification in a registry-less build.
#[must_use]
pub fn audit_manifest(rel_path: &str, text: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for rule in rules::MANIFEST_RULES {
        if (rule.applies)(rel_path) {
            (rule.check)(rel_path, text, &mut out);
        }
    }
    out
}

/// Directories the workspace walk never descends into: build output, VCS
/// metadata, dot-directories, and committed known-bad `fixtures` (those
/// *must* contain violations — the analyzer tests assert on them).
fn skip_dir(name: &str) -> bool {
    name == "target" || name == "fixtures" || name.starts_with('.')
}

/// Walks the workspace at `root` and audits every `.rs` file and every
/// `Cargo.toml`. File order is sorted so the report is deterministic.
///
/// # Errors
/// Propagates I/O failures reading the tree (an unreadable workspace must
/// fail the pass loudly, not pass vacuously).
pub fn audit_workspace(root: &Path) -> io::Result<AuditReport> {
    let mut files = Vec::new();
    collect_files(root, root, &mut files)?;
    files.sort();

    let mut report = AuditReport::default();
    for rel in &files {
        let text = std::fs::read_to_string(root.join(rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        report.files_scanned += 1;
        if rel_str.ends_with(".rs") {
            let file = SourceFile::parse(&rel_str, &text);
            let (diags, suppressed) = audit_source(&file);
            report.diagnostics.extend(diags);
            report.suppressed += suppressed;
        } else {
            report.diagnostics.extend(audit_manifest(&rel_str, &text));
        }
    }
    report.finish();
    Ok(report)
}

fn collect_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let ty = entry.file_type()?;
        if ty.is_dir() {
            if !skip_dir(&name) {
                collect_files(root, &path, out)?;
            }
        } else if ty.is_file() && (name.ends_with(".rs") || name == "Cargo.toml") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit(rel_path: &str, src: &str) -> (Vec<Diagnostic>, usize) {
        audit_source(&SourceFile::parse(rel_path, src))
    }

    #[test]
    fn pragma_suppresses_same_line_and_next_code_line() {
        let (d, s) = audit(
            "crates/solver/src/lbfgs.rs",
            "fn f() {\n\
             let a = Instant::now(); // pm-audit: allow(determinism, reason = \"telemetry\")\n\
             // pm-audit: allow(determinism, reason = \"telemetry\")\n\
             let b = Instant::now();\n\
             }\n",
        );
        assert!(d.is_empty(), "{d:?}");
        assert_eq!(s, 2);
    }

    #[test]
    fn unsuppressed_findings_survive() {
        let (d, s) = audit("crates/solver/src/lbfgs.rs", "fn f() { let a = Instant::now(); }\n");
        assert_eq!(d.len(), 1);
        assert_eq!(s, 0);
    }

    #[test]
    fn reasonless_pragma_does_not_suppress_and_is_an_error() {
        let (d, _) = audit(
            "crates/solver/src/lbfgs.rs",
            "// pm-audit: allow(determinism)\nlet a = Instant::now();\n",
        );
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().any(|x| x.rule == "determinism"));
        assert!(d.iter().any(|x| x.rule == "pragma" && x.severity == Severity::Error));
    }

    #[test]
    fn unknown_rule_pragma_is_an_error() {
        let (d, _) = audit(
            "crates/core/src/lib.rs",
            "// pm-audit: allow(lock-ordre, reason = \"typo\")\nfn f() {}\n",
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("unknown rule `lock-ordre`"));
    }

    #[test]
    fn unused_pragma_is_a_warning() {
        let (d, _) = audit(
            "crates/core/src/lib.rs",
            "// pm-audit: allow(determinism, reason = \"no finding here\")\nfn f() {}\n",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].severity, Severity::Warning);
        assert!(d[0].message.contains("suppresses nothing"));
    }

    #[test]
    fn wrong_rule_pragma_does_not_suppress() {
        let (d, s) = audit(
            "crates/solver/src/lbfgs.rs",
            "// pm-audit: allow(lock-order, reason = \"wrong rule\")\nlet a = Instant::now();\n",
        );
        assert_eq!(s, 0);
        // The determinism finding survives AND the pragma is unused.
        assert!(d.iter().any(|x| x.rule == "determinism"));
        assert!(d.iter().any(|x| x.rule == "pragma" && x.severity == Severity::Warning));
    }

    #[test]
    fn manifest_findings_flow_through() {
        let d = audit_manifest("crates/x/Cargo.toml", "[dev-dependencies]\nrand = \"0.8\"\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "shim-hygiene");
    }

    #[test]
    fn fixture_and_hidden_dirs_are_skipped() {
        assert!(skip_dir("target"));
        assert!(skip_dir("fixtures"));
        assert!(skip_dir(".git"));
        assert!(!skip_dir("src"));
    }
}
