//! **determinism** — the engine's headline guarantee is bit-identical
//! estimates across thread counts, epochs, rebases and server replay, so
//! the solve/compile hot paths must not read wall clocks into anything
//! observable or iterate hash-ordered collections into ordered outputs.
//! This rule flags, inside `pm-solver`, `pm-linalg`, `pm-parallel` and the
//! core `engine`/`compiled`/`delta`/`partition` modules — plus the session
//! layer's `analyst` (batched dispatch + merge), `batch` (the cost-model
//! batch planner) and `overlay` (flat epoch-indexed solution memory)
//! modules, whose ordering decisions are exactly what the batching refactor
//! made load-bearing:
//!
//! * any `SystemTime` use and any `Instant::now` call — wall-clock reads.
//!   Telemetry-only timing (solver stats, `CompileStats`) is legitimate
//!   but must say so with a pragma, which turns an implicit assumption
//!   into a reviewed, greppable contract;
//! * iteration over a `HashMap`/`HashSet`-typed binding (`.iter()`,
//!   `.keys()`, `.values()`, `.drain()`, `for _ in map`, …) — hash order
//!   is nondeterministic across processes, so any collection into an
//!   ordered output must either use a `BTreeMap`, sort afterwards, or
//!   justify order-independence with a pragma.

use std::collections::BTreeSet;

use crate::source::{Diagnostic, Severity, SourceFile};

/// Rule id.
pub const ID: &str = "determinism";
/// Catalog summary.
pub const SUMMARY: &str =
    "solver/linalg/parallel/core hot paths (incl. analyst/batch/overlay): \
     no wall-clock reads, no hash-ordered iteration into ordered outputs \
     (bit-replayability contract)";

/// Iteration methods whose order is the hash order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Scope: the solver, linalg and parallel crates wholesale, plus the core
/// modules on the compile/solve path — including the session layer's
/// batching/arena modules (`analyst`, `batch`, `overlay`), where a
/// hash-ordered iteration would reorder the batch plan or the merge.
#[must_use]
pub fn applies(rel_path: &str) -> bool {
    rel_path.starts_with("crates/solver/src/")
        || rel_path.starts_with("crates/linalg/src/")
        || rel_path.starts_with("crates/parallel/src/")
        || matches!(
            rel_path,
            "crates/core/src/engine.rs"
                | "crates/core/src/compiled.rs"
                | "crates/core/src/delta.rs"
                | "crates/core/src/partition.rs"
                | "crates/core/src/analyst.rs"
                | "crates/core/src/batch.rs"
                | "crates/core/src/overlay.rs"
        )
}

/// The check.
pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.tokens;

    // Pass 1: names bound to hash-ordered collections — `name: HashMap<…>`
    // ascriptions (fields, params, lets) and `let [mut] name = …HashMap::…`
    // initialisations.
    let mut hash_names: BTreeSet<String> = BTreeSet::new();
    let mut pending_let: Option<String> = None;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            pending_let = None;
            continue;
        }
        if t.is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            pending_let = toks.get(j).and_then(|t| t.ident()).map(str::to_string);
            continue;
        }
        let is_hash_ty = t
            .ident()
            .is_some_and(|id| id == "HashMap" || id == "HashSet");
        if !is_hash_ty {
            continue;
        }
        // `name : HashMap <` — a typed field / param / binding.
        if toks.get(i + 1).is_some_and(|t| t.is_punct('<'))
            && toks.get(i.wrapping_sub(1)).is_some_and(|t| t.is_punct(':'))
        {
            if let Some(name) = i
                .checked_sub(2)
                .and_then(|k| toks.get(k))
                .and_then(|t| t.ident())
            {
                hash_names.insert(name.to_string());
            }
        }
        // `let name = … HashMap :: new()` — an inferred binding.
        if toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            if let Some(name) = pending_let.take() {
                hash_names.insert(name);
            }
        }
    }

    // Pass 2: violations.
    let mut in_for_header = false;
    let mut after_in = false;
    for i in 0..toks.len() {
        let t = &toks[i];
        if file.in_test_code(t.line) {
            continue;
        }
        if t.is_ident("for") {
            in_for_header = true;
            after_in = false;
        } else if in_for_header && t.is_ident("in") {
            after_in = true;
        } else if t.is_punct('{') || t.is_punct(';') {
            in_for_header = false;
            after_in = false;
        }

        // Wall-clock reads.
        if t.is_ident("SystemTime") {
            out.push(diag(
                file,
                t.line,
                "`SystemTime` read on a deterministic path; results must be a pure \
                 function of the inputs. If this is telemetry that never feeds \
                 result bytes, say so with a pragma",
            ));
            continue;
        }
        if t.is_ident("Instant")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("now"))
        {
            out.push(diag(
                file,
                t.line,
                "`Instant::now` on a deterministic path; results must be a pure \
                 function of the inputs. If this is telemetry that never feeds \
                 result bytes, say so with a pragma",
            ));
            continue;
        }

        // Hash-ordered iteration.
        let Some(name) = t.ident() else { continue };
        if !hash_names.contains(name) {
            continue;
        }
        if toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
            && toks
                .get(i + 2)
                .and_then(|t| t.ident())
                .is_some_and(|m| ITER_METHODS.contains(&m))
            && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
        {
            let method = toks.get(i + 2).and_then(|t| t.ident()).unwrap_or_default();
            out.push(diag(
                file,
                t.line,
                &format!(
                    "`{name}.{method}()` iterates a hash-ordered collection; hash \
                     order differs across processes, so anything collected from it \
                     in order breaks bit-replayability. Sort first, use a BTreeMap, \
                     or justify order-independence with a pragma"
                ),
            ));
        } else if in_for_header && after_in {
            out.push(diag(
                file,
                t.line,
                &format!(
                    "`for _ in {name}` iterates a hash-ordered collection; hash \
                     order differs across processes, so anything collected from it \
                     in order breaks bit-replayability. Sort first, use a BTreeMap, \
                     or justify order-independence with a pragma"
                ),
            ));
        }
    }
}

fn diag(file: &SourceFile, line: u32, message: &str) -> Diagnostic {
    Diagnostic {
        rule: ID.to_string(),
        severity: Severity::Error,
        path: file.rel_path.clone(),
        line,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse("crates/solver/src/lbfgs.rs", src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_wall_clock_reads() {
        let d = run("fn f() {\nlet start = Instant::now();\nlet t = SystemTime::now();\n}\n");
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].line, 2);
        assert_eq!(d[1].line, 3);
    }

    #[test]
    fn flags_hash_iteration_by_ascription_and_inference() {
        let d = run("struct S { overlay: HashMap<usize, f64> }\n\
                     fn f(s: &S) {\n\
                     let mut local = std::collections::HashMap::new();\n\
                     local.insert(1, 2);\n\
                     for (k, v) in &s.overlay {\n\
                     }\n\
                     let keys: Vec<_> = local.keys().collect();\n\
                     }\n");
        assert_eq!(d.len(), 2, "{d:?}");
        assert_eq!(d[0].line, 5, "for-loop over ascribed field");
        assert_eq!(d[1].line, 7, ".keys() on inferred binding");
    }

    #[test]
    fn keyed_lookup_is_deterministic_and_allowed() {
        let d = run("fn f() {\n\
                     let mut local_of = std::collections::HashMap::new();\n\
                     local_of.insert(t, 1);\n\
                     let x = local_of[&t];\n\
                     let y = local_of.get(&t);\n\
                     }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn vec_iteration_is_fine() {
        let d = run("fn f(v: Vec<u8>) { for x in v.iter() {} }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn scope_covers_the_solve_path_and_batching_modules() {
        assert!(applies("crates/solver/src/maxent.rs"));
        assert!(applies("crates/core/src/partition.rs"));
        assert!(applies("crates/core/src/analyst.rs"), "batched dispatch + merge");
        assert!(applies("crates/core/src/batch.rs"), "batch planner");
        assert!(applies("crates/core/src/overlay.rs"), "flat overlay memory");
        assert!(applies("crates/parallel/src/lib.rs"), "chunk executor");
        assert!(!applies("crates/core/src/knowledge.rs"));
        assert!(!applies("crates/bench/src/parallel.rs"));
        assert!(!applies("crates/audit/src/rules/determinism.rs"));
    }
}
