//! The rule registry: each rule is a pure function over a lexed
//! [`SourceFile`] (or a `Cargo.toml` manifest) that appends
//! [`Diagnostic`]s.
//!
//! Adding a rule: write a `check(&SourceFile, &mut Vec<Diagnostic>)`
//! function in a new submodule, give it an `applies(rel_path)` scope
//! predicate, and register it in [`SOURCE_RULES`] (or [`MANIFEST_RULES`]
//! for manifest-level rules). The engine handles pragma suppression,
//! ordering and reporting; the rule only has to recognise its pattern and
//! anchor each finding to a line. Document the new rule in
//! ARCHITECTURE.md's rule catalog.

pub mod determinism;
pub mod error_codes;
pub mod lock_order;
pub mod panic_policy;
pub mod shim_hygiene;

use crate::source::{Diagnostic, SourceFile};

/// A registered source-level rule.
pub struct SourceRule {
    /// Stable rule id (what pragmas name).
    pub id: &'static str,
    /// One-line summary for `pmx audit --list-rules`.
    pub summary: &'static str,
    /// Scope predicate over the workspace-relative path.
    pub applies: fn(&str) -> bool,
    /// The check itself.
    pub check: fn(&SourceFile, &mut Vec<Diagnostic>),
}

/// A registered manifest-level rule (runs on `Cargo.toml` text).
pub struct ManifestRule {
    /// Stable rule id.
    pub id: &'static str,
    /// One-line summary for `pmx audit --list-rules`.
    pub summary: &'static str,
    /// Scope predicate over the workspace-relative path.
    pub applies: fn(&str) -> bool,
    /// The check itself.
    pub check: fn(&str, &str, &mut Vec<Diagnostic>),
}

/// Every source rule, in diagnostic-id order.
pub const SOURCE_RULES: &[SourceRule] = &[
    SourceRule {
        id: lock_order::ID,
        summary: lock_order::SUMMARY,
        applies: lock_order::applies,
        check: lock_order::check,
    },
    SourceRule {
        id: determinism::ID,
        summary: determinism::SUMMARY,
        applies: determinism::applies,
        check: determinism::check,
    },
    SourceRule {
        id: panic_policy::ID,
        summary: panic_policy::SUMMARY,
        applies: panic_policy::applies,
        check: panic_policy::check,
    },
    SourceRule {
        id: error_codes::ID,
        summary: error_codes::SUMMARY,
        applies: error_codes::applies,
        check: error_codes::check,
    },
];

/// Every manifest rule.
pub const MANIFEST_RULES: &[ManifestRule] = &[ManifestRule {
    id: shim_hygiene::ID,
    summary: shim_hygiene::SUMMARY,
    applies: shim_hygiene::applies,
    check: shim_hygiene::check,
}];

/// Whether `id` names a registered rule (pragmas naming anything else are
/// flagged as typos).
#[must_use]
pub fn is_known_rule(id: &str) -> bool {
    SOURCE_RULES.iter().any(|r| r.id == id) || MANIFEST_RULES.iter().any(|r| r.id == id)
}

/// `(id, summary)` for every rule, the implicit pragma-hygiene rule
/// included — the catalog `pmx audit --list-rules` prints.
#[must_use]
pub fn catalog() -> Vec<(&'static str, &'static str)> {
    let mut out: Vec<(&'static str, &'static str)> =
        SOURCE_RULES.iter().map(|r| (r.id, r.summary)).collect();
    out.extend(MANIFEST_RULES.iter().map(|r| (r.id, r.summary)));
    out.push((
        "pragma",
        "suppression hygiene: every `pm-audit: allow(...)` names a known rule and \
         carries a reason",
    ));
    out
}
