//! **error-code-range** — the wire protocol's `ErrorCode` split is
//! load-bearing: `is_fatal()` is literally `code < 100`, and the server
//! decides whether to close the connection from that comparison. So the
//! enum must keep fatal protocol errors below 100 and application errors
//! at or above 100, never assign a discriminant twice, never rely on an
//! implicit discriminant (wire bytes would silently shift), and keep the
//! `from_code` decoder a faithful inverse of the enum. The doc comment is
//! the declared intent: a variant documented "Fatal" must sit in the fatal
//! range and vice versa.

use std::collections::BTreeMap;

use crate::source::{Diagnostic, Severity, SourceFile};

/// Rule id.
pub const ID: &str = "error-code-range";
/// Catalog summary.
pub const SUMMARY: &str =
    "pm-serve protocol: ErrorCode keeps the fatal(<100)/app(>=100) split, \
     explicit unique discriminants, and a from_code inverse that matches";

/// Scope: the protocol module only.
#[must_use]
pub fn applies(rel_path: &str) -> bool {
    rel_path == "crates/serve/src/protocol.rs"
}

/// One parsed enum variant.
struct Variant {
    name: String,
    value: Option<u128>,
    line: u32,
    doc_fatal: bool,
}

/// The check.
pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.tokens;

    // Locate `enum ErrorCode { … }`.
    let Some(start) = (0..toks.len()).find(|&i| {
        toks[i].is_ident("enum") && toks.get(i + 1).is_some_and(|t| t.is_ident("ErrorCode"))
    }) else {
        return; // nothing to enforce in this file revision
    };
    let Some(open) = (start..toks.len()).find(|&i| toks[i].is_punct('{')) else {
        return;
    };

    // Walk the enum body at depth 1 collecting `Name [= Num] ,` entries.
    let mut variants: Vec<Variant> = Vec::new();
    let mut depth = 0usize;
    let mut end = toks.len();
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') || t.is_punct('(') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                end = i;
                break;
            }
        } else if depth == 1 {
            if t.is_punct('#') {
                // Skip the variant attribute's bracket group.
                let mut d = 0usize;
                i += 1;
                while i < toks.len() {
                    if toks[i].is_punct('[') {
                        d += 1;
                    } else if toks[i].is_punct(']') {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    i += 1;
                }
            } else if let Some(name) = t.ident() {
                let value = if toks.get(i + 1).is_some_and(|t| t.is_punct('=')) {
                    match toks.get(i + 2).map(|t| &t.tok) {
                        Some(crate::lexer::Tok::Num(v)) => *v,
                        _ => None,
                    }
                } else {
                    None
                };
                variants.push(Variant {
                    name: name.to_string(),
                    value,
                    line: t.line,
                    doc_fatal: false,
                });
            }
        }
        i += 1;
    }

    // Attach doc intent: the doc block immediately above a variant is every
    // doc comment between the previous variant and this one.
    let mut prev_line = toks.get(start).map_or(0, |t| t.line);
    for v in &mut variants {
        v.doc_fatal = file.comments.iter().any(|c| {
            c.doc && c.line > prev_line && c.end_line < v.line && c.text.contains("Fatal")
        });
        prev_line = v.line;
    }

    // Range + uniqueness + explicitness checks.
    let mut seen: BTreeMap<u128, String> = BTreeMap::new();
    for v in &variants {
        let Some(code) = v.value else {
            out.push(diag(
                file,
                v.line,
                &format!(
                    "`{}` has no explicit decimal discriminant; wire codes must be \
                     pinned — an implicit discriminant silently renumbers the \
                     protocol when a variant is inserted",
                    v.name
                ),
            ));
            continue;
        };
        if let Some(first) = seen.get(&code) {
            out.push(diag(
                file,
                v.line,
                &format!(
                    "`{}` reuses discriminant {code}, already assigned to `{first}`; \
                     the decoder cannot distinguish them on the wire",
                    v.name
                ),
            ));
        } else {
            seen.insert(code, v.name.clone());
        }
        if v.doc_fatal && code >= 100 {
            out.push(diag(
                file,
                v.line,
                &format!(
                    "`{}` is documented Fatal but its code {code} is in the \
                     application range (>= 100); `is_fatal()` will keep the \
                     connection open, contradicting the doc",
                    v.name
                ),
            ));
        }
        if !v.doc_fatal && code < 100 {
            out.push(diag(
                file,
                v.line,
                &format!(
                    "`{}` has code {code} in the fatal range (< 100) but its doc \
                     does not say \"Fatal\"; either move it to >= 100 or document \
                     that the server closes the connection on it",
                    v.name
                ),
            ));
        }
    }

    // `from_code` must be a faithful inverse: every arm maps the variant's
    // own discriminant, and every variant has an arm.
    let by_name: BTreeMap<&str, u128> = variants
        .iter()
        .filter_map(|v| v.value.map(|c| (v.name.as_str(), c)))
        .collect();
    let mut decoded: BTreeMap<&str, (u128, u32)> = BTreeMap::new();
    for i in end..toks.len() {
        // `N => Self::Variant` — tokens: Num = > Self : : Ident
        let Some(crate::lexer::Tok::Num(Some(code))) = toks.get(i).map(|t| &t.tok) else {
            continue;
        };
        if toks.get(i + 1).is_some_and(|t| t.is_punct('='))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('>'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("Self"))
            && toks.get(i + 4).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 5).is_some_and(|t| t.is_punct(':'))
        {
            if let Some(name) = toks.get(i + 6).and_then(|t| t.ident()) {
                if by_name.contains_key(name) {
                    decoded.entry(name).or_insert((*code, toks[i].line));
                }
            }
        }
    }
    if !decoded.is_empty() {
        for (name, (code, line)) in &decoded {
            if by_name.get(name).is_some_and(|c| c != code) {
                out.push(diag(
                    file,
                    *line,
                    &format!(
                        "`from_code` maps {code} to `{name}` but the enum assigns \
                         `{name}` = {}; the decoder is not the encoder's inverse",
                        by_name[name]
                    ),
                ));
            }
        }
        for v in &variants {
            if v.value.is_some() && !decoded.contains_key(v.name.as_str()) {
                out.push(diag(
                    file,
                    v.line,
                    &format!(
                        "`{}` has no arm in `from_code`; peers sending this code \
                         get `None` and treat a known error as unknown",
                        v.name
                    ),
                ));
            }
        }
    }
}

fn diag(file: &SourceFile, line: u32, message: &str) -> Diagnostic {
    Diagnostic {
        rule: ID.to_string(),
        severity: Severity::Error,
        path: file.rel_path.clone(),
        line,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse("crates/serve/src/protocol.rs", src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    const GOOD: &str = "\
#[repr(u16)]\n\
pub enum ErrorCode {\n\
    /// Bad frame. Fatal.\n\
    FrameTooLarge = 1,\n\
    /// Engine failure.\n\
    App = 100,\n\
}\n\
impl ErrorCode {\n\
    pub fn from_code(code: u16) -> Option<Self> {\n\
        Some(match code {\n\
            1 => Self::FrameTooLarge,\n\
            100 => Self::App,\n\
            _ => return None,\n\
        })\n\
    }\n\
}\n";

    #[test]
    fn well_formed_enum_is_clean() {
        assert!(run(GOOD).is_empty(), "{:?}", run(GOOD));
    }

    #[test]
    fn flags_duplicate_discriminants() {
        let d = run("enum ErrorCode {\n\
                     /// A. Fatal.\n\
                     A = 1,\n\
                     /// B. Fatal.\n\
                     B = 1,\n\
                     }\n");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("reuses discriminant 1"));
    }

    #[test]
    fn flags_fatal_doc_in_app_range_and_vice_versa() {
        let d = run("enum ErrorCode {\n\
                     /// Protocol break. Fatal.\n\
                     Bad = 105,\n\
                     /// App-level trouble.\n\
                     Soft = 9,\n\
                     }\n");
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].message.contains("application range"));
        assert!(d[1].message.contains("fatal range"));
    }

    #[test]
    fn flags_implicit_discriminants() {
        let d = run("enum ErrorCode {\n\
                     /// A. Fatal.\n\
                     A = 1,\n\
                     /// B. Fatal.\n\
                     B,\n\
                     }\n");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("no explicit decimal discriminant"));
    }

    #[test]
    fn flags_from_code_mismatch_and_omission() {
        let d = run("enum ErrorCode {\n\
                     /// A. Fatal.\n\
                     A = 1,\n\
                     /// B.\n\
                     B = 100,\n\
                     /// C.\n\
                     C = 101,\n\
                     }\n\
                     fn from_code(code: u16) -> Option<Self> {\n\
                     Some(match code {\n\
                     1 => Self::A,\n\
                     102 => Self::B,\n\
                     _ => return None,\n\
                     })\n\
                     }\n");
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().any(|d| d.message.contains("not the encoder's inverse")));
        assert!(d.iter().any(|d| d.message.contains("no arm in `from_code`")));
    }

    #[test]
    fn files_without_the_enum_are_clean() {
        assert!(run("fn unrelated() {}").is_empty());
    }
}
