//! **lock-order** — the `pm-serve` registry's documented lock order is
//! *chain before tenants, never the reverse*: `Registry::apply_delta`
//! holds the chain mutex while reading the tenants map for its prune
//! floor, so acquiring the chain lock under a live `tenants` guard is an
//! AB-BA deadlock (the exact class PR 7's review fixed in
//! `Registry::open_tenant`). This rule flags any chain acquisition —
//! `chain.lock(…)` or a call to a method known to take the chain lock —
//! lexically inside a live `tenants` read/write guard scope.

use crate::source::{Diagnostic, Severity, SourceFile};

/// Rule id.
pub const ID: &str = "lock-order";
/// Catalog summary.
pub const SUMMARY: &str =
    "pm-serve: never acquire the chain lock while a `tenants` guard is live \
     (chain -> tenants is the only safe order)";

/// Methods on `Registry` that acquire the chain mutex internally; calling
/// one under a tenants guard deadlocks exactly like a direct `chain.lock()`.
const CHAIN_LOCKING_CALLS: &[&str] = &["latest", "apply_delta", "catch_up"];

/// Scope: the whole serve crate, plus the reactor crate — its workers call
/// back into the registry (`Registry::dispatch` via the serve `Service`
/// impl), so reactor-side code holding a `tenants` guard is bound by the
/// same order.
#[must_use]
pub fn applies(rel_path: &str) -> bool {
    rel_path.starts_with("crates/serve/src/") || rel_path.starts_with("crates/reactor/src/")
}

/// How long an acquired `tenants` guard stays live, lexically.
#[derive(Debug)]
enum GuardKind {
    /// `let guard = …tenants.read()…;` — live until the enclosing block
    /// closes (depth drops below the binding's depth).
    Binding,
    /// `if let` / `while let` / `match` scrutinee — the guard temporary
    /// lives through the construct's body; dies when the body's brace
    /// closes back to the header depth.
    Scrutinee { entered: bool },
    /// Any other expression statement — the temporary dies at the `;`.
    Temporary,
}

#[derive(Debug)]
struct Guard {
    kind: GuardKind,
    /// Brace depth at the statement that acquired the guard.
    base: i32,
    line: u32,
}

/// The check: a single pass with statement and brace-depth tracking.
pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.tokens;
    let mut depth: i32 = 0;
    let mut guards: Vec<Guard> = Vec::new();
    // First identifier of the current statement (`let`, `if`, …).
    let mut stmt_head: Option<String> = None;
    let mut stmt_fresh = true;

    for i in 0..toks.len() {
        let t = &toks[i];
        if file.in_test_code(t.line) {
            continue;
        }
        // Statement head bookkeeping.
        if stmt_fresh {
            if let Some(id) = t.ident() {
                stmt_head = Some(id.to_string());
            } else {
                stmt_head = None;
            }
            stmt_fresh = false;
        }
        if t.is_punct(';') {
            guards.retain(|g| !(matches!(g.kind, GuardKind::Temporary) && depth == g.base));
            stmt_fresh = true;
        } else if t.is_punct('{') {
            depth += 1;
            for g in &mut guards {
                if let GuardKind::Scrutinee { entered } = &mut g.kind {
                    if !*entered && depth == g.base + 1 {
                        *entered = true;
                    }
                }
            }
            stmt_fresh = true;
        } else if t.is_punct('}') {
            depth -= 1;
            guards.retain(|g| match g.kind {
                GuardKind::Binding => depth >= g.base,
                GuardKind::Scrutinee { entered } => !(entered && depth <= g.base),
                GuardKind::Temporary => depth >= g.base,
            });
            stmt_fresh = true;
        }

        // A `tenants` guard acquisition: `tenants . read|write (`.
        if t.is_ident("tenants")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
            && toks
                .get(i + 2)
                .and_then(|t| t.ident())
                .is_some_and(|m| m == "read" || m == "write")
            && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
        {
            let kind = match stmt_head.as_deref() {
                Some("let") => GuardKind::Binding,
                Some("if" | "while" | "match") => GuardKind::Scrutinee { entered: false },
                _ => GuardKind::Temporary,
            };
            guards.push(Guard { kind, base: depth, line: t.line });
        }

        // A chain acquisition while any tenants guard is live.
        if guards.is_empty() {
            continue;
        }
        let direct = t.is_ident("chain")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("lock"));
        let via_call = t
            .ident()
            .is_some_and(|id| CHAIN_LOCKING_CALLS.contains(&id))
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && !toks
                .get(i.wrapping_sub(1))
                .is_some_and(|p| i > 0 && p.is_ident("fn"));
        if direct || via_call {
            let what = t.ident().unwrap_or_default();
            let guard_line = guards.last().map_or(0, |g| g.line);
            out.push(Diagnostic {
                rule: ID.to_string(),
                severity: Severity::Error,
                path: file.rel_path.clone(),
                line: t.line,
                message: format!(
                    "`{what}` acquires the chain lock inside the `tenants` guard taken \
                     on line {guard_line}; the registry's lock order is chain -> \
                     tenants, never the reverse (AB-BA deadlock with apply_delta). \
                     Fetch the chain state before taking the tenants lock."
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse("crates/serve/src/registry.rs", src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_chain_lock_under_tenants_write_guard() {
        let d = run("fn open(&self) {\n\
                     let mut tenants = self.tenants.write().unwrap();\n\
                     let latest = self.chain.lock().unwrap();\n\
                     }\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
        assert_eq!(d[0].rule, ID);
    }

    #[test]
    fn flags_chain_locking_method_calls() {
        let d = run("fn open(&self) {\n\
                     let mut tenants = self.tenants.write().unwrap();\n\
                     let latest = self.latest();\n\
                     }\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn chain_before_tenants_is_the_blessed_order() {
        let d = run("fn apply(&self) {\n\
                     let mut chain = self.chain.lock().unwrap();\n\
                     let min = {\n\
                     let tenants = self.tenants.read().unwrap();\n\
                     tenants.len()\n\
                     };\n\
                     chain.prune_below(min);\n\
                     }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn guard_scope_ends_with_its_block() {
        let d = run("fn open(&self) {\n\
                     {\n\
                     let tenants = self.tenants.write().unwrap();\n\
                     tenants.insert(k, v);\n\
                     }\n\
                     let latest = self.latest();\n\
                     }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn if_let_scrutinee_guard_covers_the_body_only() {
        let bad = run("fn open(&self) {\n\
                       if let Some(t) = self.tenants.read().unwrap().get(k) {\n\
                       let l = self.latest();\n\
                       }\n\
                       }\n");
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert_eq!(bad[0].line, 3);
        let good = run("fn open(&self) {\n\
                        if let Some(t) = self.tenants.read().unwrap().get(k) {\n\
                        return t;\n\
                        }\n\
                        let l = self.latest();\n\
                        }\n");
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn fn_definitions_are_not_calls() {
        let d = run("impl Chain {\n\
                     fn latest(&self) -> T {\n\
                     let tenants = self.tenants.read().unwrap();\n\
                     tenants.len()\n\
                     }\n\
                     }\n");
        assert!(d.is_empty(), "{d:?}");
    }
}
