//! **panic-policy** — the `pm-serve` connection, registry and accept-loop
//! code runs multi-tenant: one panicking worker poisons locks shared with
//! every other tenant's session, so the serve hot paths must not contain
//! `unwrap`/`expect`, panic-family macros, or panicking index expressions
//! outside test code. Each site either converts to a typed
//! `PmError`/protocol error, recovers (lock poison → `into_inner`), or
//! carries a pragma stating the invariant that makes the panic unreachable.

use crate::source::{Diagnostic, Severity, SourceFile};

/// Rule id.
pub const ID: &str = "panic-policy";
/// Catalog summary.
pub const SUMMARY: &str =
    "pm-serve hot modules + the pm-reactor event loop: no unwrap/expect/\
     panic!/indexing panics in non-test code (a panic in one worker \
     poisons every tenant; a panic on the reactor thread kills every \
     connection)";

/// Methods that panic on the `Err`/`None` arm.
const PANICKING_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];

/// Macros that are a panic by construction.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that can legitimately precede `[` (slice patterns, types) —
/// an ident-then-`[` sequence headed by one of these is not an index
/// expression.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "as", "dyn", "impl", "where", "pub", "return", "break", "use",
    "static", "const", "type", "enum", "struct", "fn", "match", "if", "else", "move", "box",
];

/// Scope: the serve crate's per-request modules on shared state — the
/// connection/registry/server trio plus the reactor-backend service — and
/// the whole `pm-reactor` crate, whose single event-loop thread serves
/// *every* connection (a panic there is a whole-server outage, one step
/// worse than a poisoned lock). (`loadgen` is a test client; `protocol`
/// is pure encode/decode with no shared locks.)
#[must_use]
pub fn applies(rel_path: &str) -> bool {
    matches!(
        rel_path,
        "crates/serve/src/conn.rs"
            | "crates/serve/src/registry.rs"
            | "crates/serve/src/server.rs"
            | "crates/serve/src/reactor.rs"
    ) || rel_path.starts_with("crates/reactor/src/")
}

/// The check.
pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if file.in_test_code(t.line) {
            continue;
        }
        let Some(id) = t.ident() else { continue };

        // `.unwrap(` / `.expect(` — exact method-name match, so
        // `unwrap_or_else` and friends never trip this.
        if PANICKING_METHODS.contains(&id)
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            out.push(diag(
                file,
                t.line,
                &format!(
                    "`.{id}()` in serve hot path; a panic here poisons locks shared \
                     across tenants. Convert to a typed error, recover (poisoned \
                     locks: `unwrap_or_else(PoisonError::into_inner)`), or state \
                     the invariant with a pragma"
                ),
            ));
            continue;
        }

        // `panic!(` and friends.
        if PANIC_MACROS.contains(&id) && toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            out.push(diag(
                file,
                t.line,
                &format!(
                    "`{id}!` in serve hot path; a panic here poisons locks shared \
                     across tenants. Return a protocol error instead, or state the \
                     invariant with a pragma"
                ),
            ));
            continue;
        }

        // `expr[…]` indexing — panics out of bounds. `ident [` is an index
        // expression unless the ident is a keyword (slice patterns, types).
        if !NON_INDEX_KEYWORDS.contains(&id)
            && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
        {
            out.push(diag(
                file,
                t.line,
                &format!(
                    "`{id}[…]` indexes without a bounds check and panics out of \
                     range; use `.get()` and handle `None`, or state the bounds \
                     invariant with a pragma"
                ),
            ));
        }
    }
}

fn diag(file: &SourceFile, line: u32, message: &str) -> Diagnostic {
    Diagnostic {
        rule: ID.to_string(),
        severity: Severity::Error,
        path: file.rel_path.clone(),
        line,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse("crates/serve/src/conn.rs", src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_unwrap_expect_and_macros() {
        let d = run("fn f() {\n\
                     let a = x.unwrap();\n\
                     let b = y.expect(\"msg\");\n\
                     panic!(\"boom\");\n\
                     unreachable!();\n\
                     }\n");
        assert_eq!(d.len(), 4, "{d:?}");
        assert_eq!(d.iter().map(|d| d.line).collect::<Vec<_>>(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn fallible_combinators_are_fine() {
        let d = run("fn f() {\n\
                     let a = x.unwrap_or_else(PoisonError::into_inner);\n\
                     let b = y.unwrap_or_default();\n\
                     let c = z.unwrap_or(0);\n\
                     let d = w.expect_something_custom();\n\
                     }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn flags_index_expressions_not_slice_patterns() {
        let bad = run("fn f(buf: &[u8]) { let x = buf[0]; }\n");
        assert_eq!(bad.len(), 1, "{bad:?}");
        let good = run("fn f() {\n\
                        let [a, b] = pair;\n\
                        let v: Vec<[u8; 4]> = vec![];\n\
                        let w = vec![1, 2];\n\
                        }\n");
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let d = run("fn prod() { x.call(); }\n\
                     #[cfg(test)]\n\
                     mod tests {\n\
                     #[test]\n\
                     fn t() { y.unwrap(); assert_eq!(v[0], 1); }\n\
                     }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn scope_is_the_hot_modules_and_the_reactor_crate() {
        assert!(applies("crates/serve/src/registry.rs"));
        assert!(applies("crates/serve/src/server.rs"));
        assert!(applies("crates/serve/src/reactor.rs"));
        assert!(applies("crates/reactor/src/reactor.rs"));
        assert!(applies("crates/reactor/src/slab.rs"));
        assert!(applies("crates/reactor/src/sys.rs"));
        assert!(!applies("crates/serve/src/protocol.rs"));
        assert!(!applies("crates/serve/src/loadgen.rs"));
        assert!(!applies("crates/reactor/tests/test_reactor_echo.rs"));
    }
}
