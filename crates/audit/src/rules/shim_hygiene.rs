//! **shim-hygiene** — the workspace is registry-less: `rand`, `proptest`
//! and `criterion` are vendored std-only shims under `crates/shims/`. A
//! member manifest naming one of them directly (a version requirement, a
//! git source, its own path) bypasses the vendoring and breaks the build
//! the moment it runs without a registry. Members must inherit via
//! `{ workspace = true }`, and the root `[workspace.dependencies]` table
//! must keep pointing each shim at `crates/shims/`.

use crate::source::{Diagnostic, Severity};

/// Rule id.
pub const ID: &str = "shim-hygiene";
/// Catalog summary.
pub const SUMMARY: &str =
    "manifests: rand/proptest/criterion only via `workspace = true` \
     inheritance from the root's crates/shims/ path entries";

/// The vendored crate names.
const SHIMMED: &[&str] = &["rand", "proptest", "criterion"];

/// Scope: every manifest except the shims' own.
#[must_use]
pub fn applies(rel_path: &str) -> bool {
    (rel_path == "Cargo.toml" || rel_path.ends_with("/Cargo.toml"))
        && !rel_path.starts_with("crates/shims/")
}

/// The check: a line-oriented TOML scan (section headers + `name = value`
/// pairs is all manifest hygiene needs — no TOML parser in a std-only
/// crate).
pub fn check(rel_path: &str, text: &str, out: &mut Vec<Diagnostic>) {
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx as u32 + 1;
        let l = raw.trim();
        if l.starts_with('[') {
            section = l.trim_matches(|c| c == '[' || c == ']').to_string();
            continue;
        }
        let Some((key, value)) = l.split_once('=') else { continue };
        let key = key.trim().trim_matches('"');
        if !SHIMMED.contains(&key) {
            continue;
        }
        let value = value.trim();
        let in_root_table = section == "workspace.dependencies";
        let in_member_table = matches!(
            section.as_str(),
            "dependencies" | "dev-dependencies" | "build-dependencies"
        ) || section.starts_with("target.") && section.ends_with("dependencies");
        if in_root_table {
            if !value.contains("crates/shims/") {
                out.push(diag(
                    rel_path,
                    line,
                    &format!(
                        "workspace dependency `{key}` does not path into \
                         crates/shims/; the build is registry-less, so every \
                         shimmed crate must resolve to its vendored shim"
                    ),
                ));
            }
        } else if in_member_table && !value.contains("workspace = true") {
            out.push(diag(
                rel_path,
                line,
                &format!(
                    "`{key}` is named directly instead of inheriting the vendored \
                     shim; use `{key} = {{ workspace = true }}` so the registry-less \
                     build keeps resolving to crates/shims/{key}"
                ),
            ));
        }
    }
}

fn diag(rel_path: &str, line: u32, message: &str) -> Diagnostic {
    Diagnostic {
        rule: ID.to_string(),
        severity: Severity::Error,
        path: rel_path.to_string(),
        line,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, text: &str) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        check(path, text, &mut out);
        out
    }

    #[test]
    fn workspace_inheritance_is_clean() {
        let d = run(
            "crates/solver/Cargo.toml",
            "[dependencies]\npm-core = { workspace = true }\n\n\
             [dev-dependencies]\nproptest = { workspace = true }\n\
             criterion = { workspace = true }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn direct_versions_are_flagged() {
        let d = run(
            "crates/solver/Cargo.toml",
            "[dev-dependencies]\nproptest = \"1.4\"\nrand = { version = \"0.8\" }\n",
        );
        assert_eq!(d.len(), 2, "{d:?}");
        assert_eq!(d[0].line, 2);
        assert_eq!(d[1].line, 3);
    }

    #[test]
    fn root_table_must_path_into_shims() {
        let good = run(
            "Cargo.toml",
            "[workspace.dependencies]\nrand = { path = \"crates/shims/rand\" }\n",
        );
        assert!(good.is_empty(), "{good:?}");
        let bad = run("Cargo.toml", "[workspace.dependencies]\nrand = \"0.8\"\n");
        assert_eq!(bad.len(), 1, "{bad:?}");
    }

    #[test]
    fn the_shims_own_manifests_are_exempt() {
        assert!(!applies("crates/shims/rand/Cargo.toml"));
        assert!(applies("crates/audit/Cargo.toml"));
        assert!(applies("Cargo.toml"));
        assert!(!applies("crates/audit/src/lib.rs"));
    }

    #[test]
    fn unrelated_keys_and_sections_are_ignored() {
        let d = run(
            "crates/x/Cargo.toml",
            "[package]\nname = \"rand-user\"\n[features]\nrand = []\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
