//! End-to-end scale smoke tests for the parallel engine.
//!
//! The tier-1 variant runs a 200-bucket Adult-like pipeline (1,000 records)
//! on 2 worker threads; the `#[ignore]`d variant is the paper-scale run —
//! 14,210 records in 2,842 buckets (Section 7's Adult workload) — for
//! `cargo test -- --ignored` and the bench pipeline.

use pm_anonymize::anatomy::{AnatomyBucketizer, AnatomyConfig};
use pm_anonymize::published::PublishedTable;
use pm_assoc::miner::{MinerConfig, RuleMiner};
use pm_datagen::adult::{AdultGenerator, AdultGeneratorConfig};
use privacy_maxent::compiled::CompiledTable;
use privacy_maxent::engine::{Engine, EngineConfig, Estimate};
use privacy_maxent::knowledge::KnowledgeBase;

/// Cold-build → save → cold-load → bit-compare, at the given scale. The
/// seed era's only cold-build coverage at scale was the `#[ignore]`d run
/// below; this persisted path runs the same shape through the snapshot
/// codec, so the tier-1 suite exercises save/load on a real pipeline too.
fn assert_persisted_roundtrip(records: usize, seed: u64, threads: usize, name: &str) {
    let data = AdultGenerator::new(AdultGeneratorConfig { records, seed }).generate();
    let table = AnatomyBucketizer::new(AnatomyConfig { ell: 5, exempt_top: 1 })
        .publish(&data)
        .expect("bucketization succeeds");
    let config =
        EngineConfig::builder().threads(threads).residual_limit(f64::INFINITY).build();
    let built = CompiledTable::build(table, config).expect("baseline solves");
    let path = std::env::temp_dir()
        .join(format!("pmx-scale-{}-{name}.pmx", std::process::id()));
    built.save(&path).expect("save succeeds");
    let loaded = CompiledTable::load(&path).expect("load succeeds");
    assert_eq!(loaded.term_index().len(), built.term_index().len());
    assert_eq!(loaded.num_invariants(), built.num_invariants());
    assert_eq!(
        loaded.baseline_estimate().term_values(),
        built.baseline_estimate().term_values(),
        "loaded artifact must serve the built artifact's bits"
    );
    std::fs::remove_file(&path).ok();
}

fn run_pipeline(
    records: usize,
    seed: u64,
    arities: Vec<usize>,
    k: usize,
    threads: usize,
) -> (PublishedTable, Estimate) {
    let data = AdultGenerator::new(AdultGeneratorConfig { records, seed }).generate();
    let table = AnatomyBucketizer::new(AnatomyConfig { ell: 5, exempt_top: 1 })
        .publish(&data)
        .expect("bucketization succeeds");
    let rules = RuleMiner::new(MinerConfig { min_support: 3, arities }).mine(&data);
    let picked = rules.top_k(k / 2, k - k / 2);
    let kb = KnowledgeBase::from_rules(picked.iter().copied(), data.schema())
        .expect("mined rules are valid knowledge");
    let est = Engine::new(
        EngineConfig::builder().threads(threads).residual_limit(f64::INFINITY).build(),
    )
    .estimate(&table, &kb)
    .expect("mined knowledge is feasible");
    (table, est)
}

fn assert_valid_estimate(table: &PublishedTable, est: &Estimate) {
    assert_eq!(est.distinct_qi(), table.interner().distinct());
    for q in 0..est.distinct_qi() {
        let row = est.conditional_row(q);
        let sum: f64 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "P(S | q={q}) sums to {sum}");
        assert!(row.iter().all(|&p| (0.0..=1.0 + 1e-9).contains(&p)));
    }
}

/// Tier-1: 200 buckets end to end on 2 worker threads, bit-identical to
/// the sequential run.
#[test]
fn two_hundred_bucket_pipeline_on_two_threads() {
    let (table, est) = run_pipeline(1_000, 5, vec![1, 2], 60, 2);
    assert_eq!(table.num_buckets(), 200);
    assert!(
        est.stats.num_components > 1,
        "knowledge decomposes into several components, got {}",
        est.stats.num_components
    );
    assert_valid_estimate(&table, &est);

    let (_, sequential) = run_pipeline(1_000, 5, vec![1, 2], 60, 1);
    assert_eq!(est.term_values(), sequential.term_values(), "bit-identical to 1 thread");
}

/// Tier-1: the 200-bucket artifact survives the snapshot codec
/// bit-identically.
#[test]
fn two_hundred_bucket_artifact_persists() {
    assert_persisted_roundtrip(1_000, 5, 2, "tier1");
}

/// Paper scale persisted: the 2,842-bucket Adult artifact through
/// save → load, bit-identical. Run with `cargo test -- --ignored`.
#[test]
#[ignore = "Adult-scale (2,842 buckets); run with --ignored"]
fn adult_scale_artifact_persists() {
    assert_persisted_roundtrip(14_210, 1, 0, "adult");
}

/// Paper scale (Section 7): 14,210 records, 2,842 buckets. ~10 s in
/// release, minutes in debug — run explicitly with `cargo test -- --ignored`.
#[test]
#[ignore = "Adult-scale (2,842 buckets); run with --ignored"]
fn adult_scale_pipeline() {
    let (table, est) = run_pipeline(14_210, 1, vec![4], 300, 0);
    assert_eq!(table.num_buckets(), 2_842, "the paper's Adult bucket count");
    assert_valid_estimate(&table, &est);
    assert!(
        est.stats.num_components > 2_000,
        "high-arity knowledge decomposes Adult into thousands of components, got {}",
        est.stats.num_components
    );
    assert!(
        est.stats.num_irrelevant > 1_000,
        "most components are irrelevant (Theorem 5 closed form), got {}",
        est.stats.num_irrelevant
    );

    let (_, sequential) = run_pipeline(14_210, 1, vec![4], 300, 1);
    assert_eq!(est.term_values(), sequential.term_values(), "bit-identical to 1 thread");
}
