//! End-to-end scale smoke tests for the parallel engine.
//!
//! The tier-1 variant runs a 200-bucket Adult-like pipeline (1,000 records)
//! on 2 worker threads; the `#[ignore]`d variant is the paper-scale run —
//! 14,210 records in 2,842 buckets (Section 7's Adult workload) — for
//! `cargo test -- --ignored` and the bench pipeline.

use pm_anonymize::anatomy::{AnatomyBucketizer, AnatomyConfig};
use pm_anonymize::published::PublishedTable;
use pm_assoc::miner::{MinerConfig, RuleMiner};
use pm_datagen::adult::{AdultGenerator, AdultGeneratorConfig};
use privacy_maxent::engine::{Engine, EngineConfig, Estimate};
use privacy_maxent::knowledge::KnowledgeBase;

fn run_pipeline(
    records: usize,
    seed: u64,
    arities: Vec<usize>,
    k: usize,
    threads: usize,
) -> (PublishedTable, Estimate) {
    let data = AdultGenerator::new(AdultGeneratorConfig { records, seed }).generate();
    let table = AnatomyBucketizer::new(AnatomyConfig { ell: 5, exempt_top: 1 })
        .publish(&data)
        .expect("bucketization succeeds");
    let rules = RuleMiner::new(MinerConfig { min_support: 3, arities }).mine(&data);
    let picked = rules.top_k(k / 2, k - k / 2);
    let kb = KnowledgeBase::from_rules(picked.iter().copied(), data.schema())
        .expect("mined rules are valid knowledge");
    let est = Engine::new(
        EngineConfig::builder().threads(threads).residual_limit(f64::INFINITY).build(),
    )
    .estimate(&table, &kb)
    .expect("mined knowledge is feasible");
    (table, est)
}

fn assert_valid_estimate(table: &PublishedTable, est: &Estimate) {
    assert_eq!(est.distinct_qi(), table.interner().distinct());
    for q in 0..est.distinct_qi() {
        let row = est.conditional_row(q);
        let sum: f64 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "P(S | q={q}) sums to {sum}");
        assert!(row.iter().all(|&p| (0.0..=1.0 + 1e-9).contains(&p)));
    }
}

/// Tier-1: 200 buckets end to end on 2 worker threads, bit-identical to
/// the sequential run.
#[test]
fn two_hundred_bucket_pipeline_on_two_threads() {
    let (table, est) = run_pipeline(1_000, 5, vec![1, 2], 60, 2);
    assert_eq!(table.num_buckets(), 200);
    assert!(
        est.stats.num_components > 1,
        "knowledge decomposes into several components, got {}",
        est.stats.num_components
    );
    assert_valid_estimate(&table, &est);

    let (_, sequential) = run_pipeline(1_000, 5, vec![1, 2], 60, 1);
    assert_eq!(est.term_values(), sequential.term_values(), "bit-identical to 1 thread");
}

/// Paper scale (Section 7): 14,210 records, 2,842 buckets. ~10 s in
/// release, minutes in debug — run explicitly with `cargo test -- --ignored`.
#[test]
#[ignore = "Adult-scale (2,842 buckets); run with --ignored"]
fn adult_scale_pipeline() {
    let (table, est) = run_pipeline(14_210, 1, vec![4], 300, 0);
    assert_eq!(table.num_buckets(), 2_842, "the paper's Adult bucket count");
    assert_valid_estimate(&table, &est);
    assert!(
        est.stats.num_components > 2_000,
        "high-arity knowledge decomposes Adult into thousands of components, got {}",
        est.stats.num_components
    );
    assert!(
        est.stats.num_irrelevant > 1_000,
        "most components are irrelevant (Theorem 5 closed form), got {}",
        est.stats.num_irrelevant
    );

    let (_, sequential) = run_pipeline(14_210, 1, vec![4], 300, 1);
    assert_eq!(est.term_values(), sequential.term_values(), "bit-identical to 1 thread");
}
