//! Round-trip equivalence of the persistence layer.
//!
//! The persist contract: a `CompiledTable` that goes through
//! `save → load` — or through `save + WAL journal → recover` across a
//! random delta tape — serves **bit-identical** estimates to the in-memory
//! original, for every thread count, under an evolving knowledge set; and
//! the loaded lineage keeps the structural-sharing guarantees (untouched
//! buckets pointer-shared across epochs). Encoding is pinned closed:
//! `save(load(x))` reproduces `x` byte for byte, which ties the stored
//! ROWS/QIBUCKETS sections to the lazily re-derived ones.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use pm_anonymize::anatomy::{AnatomyBucketizer, AnatomyConfig};
use pm_anonymize::published::PublishedTable;
use pm_assoc::miner::{MinerConfig, RuleMiner};
use pm_datagen::adult::{AdultGenerator, AdultGeneratorConfig};
use privacy_maxent::analyst::Analyst;
use privacy_maxent::compiled::CompiledTable;
use privacy_maxent::delta::TableDelta;
use privacy_maxent::engine::EngineConfig;
use privacy_maxent::knowledge::Knowledge;
use privacy_maxent::persist::{recover, EpochWal, SNAPSHOT_FILE};
use proptest::prelude::*;

fn config(threads: usize) -> EngineConfig {
    EngineConfig::builder().threads(threads).residual_limit(f64::INFINITY).build()
}

/// Seeded Adult-like workload: publication + mined knowledge items.
fn workload(records: usize, seed: u64, k: usize) -> (PublishedTable, Vec<Knowledge>) {
    let data = AdultGenerator::new(AdultGeneratorConfig { records, seed }).generate();
    let table = AnatomyBucketizer::new(AnatomyConfig { ell: 5, exempt_top: 1 })
        .publish(&data)
        .expect("bucketization succeeds");
    let rules = RuleMiner::new(MinerConfig { min_support: 3, arities: vec![1, 2] })
        .mine(&data);
    let items = rules
        .top_k(k / 2, k - k / 2)
        .iter()
        .map(|r| Knowledge::from_rule(r, data.schema()).expect("mined rules are valid"))
        .collect();
    (table, items)
}

/// A valid single-record delta drawn from the table's own multisets.
fn pick_delta(table: &PublishedTable, op: usize, bucket_sel: usize, rec_sel: usize) -> TableDelta {
    let m = table.num_buckets();
    let b = bucket_sel % m;
    let bucket = table.bucket(b);
    let q = bucket.qi_counts()[rec_sel % bucket.distinct_qi()].0;
    let s = bucket.sa_counts()[rec_sel % bucket.distinct_sa()].0;
    let mut tuple = table.interner().tuple(q).to_vec();
    match op % 4 {
        0 => TableDelta::new().insert(tuple, s, (b + 1) % m),
        1 => TableDelta::new().retract(tuple, s, b),
        2 => TableDelta::new().move_record(tuple, s, b, (b + 1) % m),
        _ => {
            tuple[0] += 1000 + rec_sel as u16;
            TableDelta::new().insert(tuple, s, b)
        }
    }
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("pmx-roundtrip-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("temp dir");
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Random tables, random delta tapes, random knowledge prefixes: the
    /// artifact recovered from `snapshot + WAL` is bit-identical — across
    /// threads 1 / 2 / auto — to the in-memory epoch chain, with and
    /// without background knowledge on top.
    #[test]
    fn saved_and_recovered_artifacts_serve_identical_bits(
        seed in 1u64..10_000,
        k in 10usize..25,
        ops in proptest::collection::vec((0usize..4, 0usize..1000, 0usize..1000), 2..7),
    ) {
        for threads in [1usize, 2, 0] {
            let (table, items) = workload(400, seed, k);
            let dir = tmpdir(&format!("tape-{threads}"));
            let e0 = Arc::new(
                CompiledTable::build(table, config(threads)).expect("baseline solves"),
            );
            e0.save(dir.join(SNAPSHOT_FILE)).expect("save succeeds");
            let mut wal = EpochWal::create(&dir, e0.epoch()).expect("wal create");

            // Drive the live chain, journaling every epoch.
            let mut artifact = Arc::clone(&e0);
            for &(op, sel_a, sel_b) in &ops {
                let delta = pick_delta(artifact.table(), op, sel_a, sel_b);
                let next =
                    Arc::new(artifact.apply(&delta).expect("selector picks valid records"));
                wal.append(
                    next.epoch(),
                    &delta,
                    next.applied_delta().expect("apply records a delta"),
                )
                .expect("append succeeds");
                artifact = next;
            }

            // A restarted server must land on the same bits.
            let recovered = recover(&dir).expect("clean WAL recovers");
            prop_assert_eq!(recovered.replayed, ops.len());
            prop_assert_eq!(recovered.artifact.epoch(), artifact.epoch());
            prop_assert_eq!(
                recovered.artifact.baseline_estimate().term_values(),
                artifact.baseline_estimate().term_values(),
                "threads={} seed={}: recovered baseline diverged", threads, seed
            );

            // ... and serve the same bits under knowledge, too.
            let mut live = Analyst::open(Arc::clone(&artifact));
            live.add_knowledge_batch(&items).expect("knowledge compiles");
            live.refresh().expect("mined knowledge is feasible");
            let mut reopened = Analyst::open(Arc::new(recovered.artifact));
            reopened.add_knowledge_batch(&items).expect("knowledge compiles");
            reopened.refresh().expect("mined knowledge is feasible");
            prop_assert_eq!(
                live.estimate().term_values(),
                reopened.estimate().term_values(),
                "threads={} seed={}: knowledge estimates diverged", threads, seed
            );
            for q in 0..live.estimate().distinct_qi() {
                prop_assert_eq!(
                    live.estimate().conditional_row(q),
                    reopened.estimate().conditional_row(q),
                    "P(S | q={}) differs", q
                );
            }
            fs::remove_dir_all(&dir).ok();
        }
    }

    /// The encoding is pinned closed under load: re-saving a loaded
    /// snapshot reproduces the file byte for byte (so the stored ROWS and
    /// QIBUCKETS sections provably match what the loaded artifact lazily
    /// re-derives), for random tables and epochs.
    #[test]
    fn save_load_save_is_byte_stable(
        seed in 1u64..10_000,
        op in 0usize..4,
        sel in 0usize..1000,
    ) {
        let (table, _) = workload(300, seed, 5);
        let dir = tmpdir("bytes");
        let e0 = CompiledTable::build(table, config(1)).expect("baseline solves");
        let e1 = e0.apply(&pick_delta(e0.table(), op, sel, sel)).expect("valid delta");
        for (name, artifact) in [("e0", &e0), ("e1", &e1)] {
            let path = dir.join(format!("{name}.pmx"));
            artifact.save(&path).expect("save succeeds");
            let original = fs::read(&path).expect("read back");
            let loaded = CompiledTable::load(&path).expect("load succeeds");
            let resaved = dir.join(format!("{name}-resaved.pmx"));
            loaded.save(&resaved).expect("re-save succeeds");
            prop_assert_eq!(
                fs::read(&resaved).expect("read back"),
                original,
                "seed={} {}: save(load(x)) != x", seed, name
            );
        }
        fs::remove_dir_all(&dir).ok();
    }
}

/// A loaded artifact keeps the epoch-sharing contract: applying a delta on
/// top of it recompiles only the touched buckets and pointer-shares every
/// other bucket with the loaded parent.
#[test]
fn loaded_lineage_preserves_structural_sharing() {
    let (table, _) = workload(400, 11, 5);
    let dir = tmpdir("sharing");
    let e0 = CompiledTable::build(table, config(2)).expect("baseline solves");
    e0.save(dir.join(SNAPSHOT_FILE)).expect("save succeeds");
    let loaded = CompiledTable::load(dir.join(SNAPSHOT_FILE)).expect("load succeeds");

    for step in 0..4usize {
        let delta = pick_delta(loaded.table(), step, step * 7 + 1, step * 13 + 3);
        let mem = e0.apply(&delta).expect("valid delta");
        let disk = loaded.apply(&delta).expect("valid delta");
        let touched = disk.applied_delta().unwrap().touched_buckets().to_vec();
        assert_eq!(
            touched,
            mem.applied_delta().unwrap().touched_buckets(),
            "step {step}: footprints diverged"
        );
        for b in 0..loaded.table().num_buckets() {
            assert_eq!(
                disk.bucket_shared_with(&loaded, b),
                !touched.contains(&b),
                "step {step}: bucket {b} sharing is wrong (touched: {touched:?})"
            );
        }
        assert_eq!(
            disk.baseline_estimate().term_values(),
            mem.baseline_estimate().term_values(),
            "step {step}: estimates diverged"
        );
    }
    fs::remove_dir_all(&dir).ok();
}
