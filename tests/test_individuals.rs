//! Integration tests of the Section 6 individual-knowledge engine against
//! the base engine and on randomized instances.

use pm_anonymize::anatomy::{AnatomyBucketizer, AnatomyConfig};
use pm_anonymize::fixtures::paper_example;
use pm_anonymize::pseudonym::PseudonymTable;
use pm_datagen::workload::{synthetic_dataset, WorkloadConfig};
use privacy_maxent::engine::Engine;
use privacy_maxent::individuals::IndividualEngine;
use privacy_maxent::knowledge::{Knowledge, KnowledgeBase};

#[test]
fn mixed_knowledge_combines_both_kinds() {
    // Distribution knowledge + individual knowledge in one base.
    let (_, table) = paper_example();
    let mut kb = KnowledgeBase::new();
    kb.push(Knowledge::Conditional { antecedent: vec![(0, 0)], sa: 2, probability: 0.0 })
        .unwrap();
    kb.push(Knowledge::IndividualSa { pseudonym: 0, sa: 3, probability: 0.5 })
        .unwrap();
    let est = IndividualEngine::new().estimate(&table, &kb).unwrap();
    // Individual part honoured…
    assert!((est.person_posterior(0)[3] - 0.5).abs() < 1e-5);
    // …and the distribution part: males never have breast cancer.
    let interner = table.interner();
    for (q, tuple, _) in interner.iter() {
        if tuple[0] == 0 {
            assert!(est.conditional(q, 2) < 1e-6, "male q{q} got breast cancer");
        }
    }
}

#[test]
fn conditional_knowledge_matches_base_engine_through_expansion() {
    // Pure distribution knowledge must produce identical conditionals via
    // either engine (pseudonym expansion is a refinement, not a change).
    let (_, table) = paper_example();
    let mut kb = KnowledgeBase::new();
    kb.push(Knowledge::Conditional { antecedent: vec![(1, 0)], sa: 3, probability: 0.4 })
        .unwrap();
    let base = Engine::default().estimate(&table, &kb).unwrap();
    let expanded = IndividualEngine::new().estimate(&table, &kb).unwrap();
    for q in 0..base.distinct_qi() {
        for s in 0..5u16 {
            assert!(
                (base.conditional(q, s) - expanded.conditional(q, s)).abs() < 1e-5,
                "q={q} s={s}: base {} vs expanded {}",
                base.conditional(q, s),
                expanded.conditional(q, s)
            );
        }
    }
}

#[test]
fn person_posteriors_are_distributions_on_random_data() {
    for seed in 0..4u64 {
        let data = synthetic_dataset(&WorkloadConfig {
            records: 40,
            qi_arities: vec![3, 2],
            sa_arity: 4,
            correlation: 0.4,
            seed,
        });
        let table = AnatomyBucketizer::new(AnatomyConfig { ell: 4, exempt_top: 4 })
            .publish(&data)
            .unwrap();
        let est = IndividualEngine::new().estimate(&table, &KnowledgeBase::new()).unwrap();
        let pseud = PseudonymTable::from_interner(table.interner());
        for i in 0..pseud.total() {
            let posterior = est.person_posterior(i);
            let sum: f64 = posterior.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "seed {seed} person {i}: sum {sum}");
            assert!(posterior.iter().all(|&p| p >= -1e-9));
        }
    }
}

#[test]
fn certainty_about_one_person_shifts_peers() {
    // Telling the adversary one q1-person's disease redistributes the
    // remaining bucket mass over the other q1 people.
    let (_, table) = paper_example();
    let baseline = IndividualEngine::new()
        .estimate(&table, &KnowledgeBase::new())
        .unwrap();
    let mut kb = KnowledgeBase::new();
    kb.push(Knowledge::IndividualOneOf { pseudonym: 0, sas: vec![3] }) // i1 has HIV
        .unwrap();
    let est = IndividualEngine::new().estimate(&table, &kb).unwrap();
    // i1 pinned.
    assert!((est.person_posterior(0)[3] - 1.0).abs() < 1e-5);
    // Peers i2, i3 now have *less* HIV probability than baseline (i1 takes
    // the only admissible q1-HIV slot in bucket 2).
    for peer in [1usize, 2] {
        assert!(
            est.person_posterior(peer)[3] < baseline.person_posterior(peer)[3] + 1e-9,
            "peer {peer}"
        );
    }
}
