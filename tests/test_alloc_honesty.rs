//! Allocation honesty of the steady-state refresh path.
//!
//! The flat overlay + per-worker scratch arena exist so that a
//! steady-state refresh (re-solve the dirty components of one
//! single-record delta) performs O(dirty components) heap allocations —
//! not O(total components) and not O(terms). This test counts real
//! allocator traffic with a wrapping `#[global_allocator]` and pins both
//! a *ratio* (steady-state refresh ≪ the from-scratch baseline build) and
//! a committed *absolute ceiling*, so an accidental per-term or per-bucket
//! allocation sneaking back into the hot loop fails loudly rather than
//! showing up as a silent perf cliff.
//!
//! Everything runs in ONE `#[test]` so no concurrent test in this binary
//! can pollute the counters, and the engine is pinned to one thread so
//! worker-pool bookkeeping doesn't blur the measurement.

// The workspace denies `unsafe_code`; a counting `#[global_allocator]`
// is the one place a test genuinely needs it — the wrapper only bumps a
// counter and forwards verbatim to `System`.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pm_anonymize::anatomy::{AnatomyBucketizer, AnatomyConfig};
use pm_assoc::miner::{MinerConfig, RuleMiner};
use pm_datagen::adult::{AdultGenerator, AdultGeneratorConfig};
use privacy_maxent::analyst::Analyst;
use privacy_maxent::compiled::CompiledTable;
use privacy_maxent::delta::TableDelta;
use privacy_maxent::engine::EngineConfig;
use privacy_maxent::knowledge::Knowledge;

/// Counts every allocation (and reallocation) while delegating to the
/// system allocator. Frees are not counted: the contract under test is
/// about acquiring memory in the hot path.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

fn count<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, result)
}

/// A valid single-record move drawn from the table's own multisets,
/// varied by `salt` so successive steady-state deltas hit different
/// buckets.
fn pick_delta(table: &pm_anonymize::published::PublishedTable, salt: usize) -> TableDelta {
    let m = table.num_buckets();
    let b = salt % m;
    let bucket = table.bucket(b);
    let q = bucket.qi_counts()[salt % bucket.distinct_qi()].0;
    let s = bucket.sa_counts()[salt % bucket.distinct_sa()].0;
    let tuple = table.interner().tuple(q).to_vec();
    TableDelta::new().move_record(tuple, s, b, (b + 1) % m)
}

#[test]
fn steady_state_refresh_allocates_o_dirty_not_o_table() {
    let data = AdultGenerator::new(AdultGeneratorConfig { records: 1_000, seed: 17 }).generate();
    let table = AnatomyBucketizer::new(AnatomyConfig { ell: 5, exempt_top: 1 })
        .publish(&data)
        .expect("bucketization succeeds");
    let rules = RuleMiner::new(MinerConfig { min_support: 3, arities: vec![1, 2] }).mine(&data);
    let items: Vec<Knowledge> = rules
        .top_k(20, 20)
        .iter()
        .map(|r| Knowledge::from_rule(r, data.schema()).expect("mined rules are valid"))
        .collect();
    let cfg = EngineConfig::builder().threads(1).residual_limit(f64::INFINITY).build();

    // Baseline: compile the table and bring a session to steady state.
    let (build_allocs, artifact) = count(|| {
        Arc::new(CompiledTable::build(table, cfg).expect("baseline solves"))
    });
    let mut artifact = artifact;
    let mut session = Analyst::open(Arc::clone(&artifact));
    session.add_knowledge_batch(&items).expect("knowledge compiles");
    let (first_refresh_allocs, _) = count(|| session.refresh().expect("feasible"));

    // Warm the steady state once: the first delta-refresh still grows the
    // scratch arena and overlay buffer to their high-water marks.
    for salt in [3usize, 5] {
        let delta = pick_delta(artifact.table(), salt);
        let next = Arc::new(artifact.apply(&delta).expect("valid delta"));
        session.rebase(&next).expect("direct successor");
        session.refresh().expect("feasible");
        artifact = next;
    }

    // Measure: single-record delta → rebase → refresh, several times. Each
    // refresh lands in one of two classes, and the honest bound differs:
    //
    // * the delta hit only knowledge-free buckets — the dirty components
    //   revert to closed form, no solver runs, and the refresh is pure
    //   bookkeeping (knowledge rows, overlay writes, estimate assembly).
    //   This is the path a per-table allocation would pollute, so it gets
    //   a small committed absolute ceiling;
    // * the delta hit the knowledge-connected component — the solver
    //   legitimately re-solves it, and its allocations scale with that
    //   *component*, not the table: strictly below the full first refresh.
    let mut worst_closed = 0u64;
    let mut worst_numeric = 0u64;
    let (mut closed_seen, mut numeric_seen) = (0u32, 0u32);
    for salt in [7usize, 11, 13, 19] {
        let delta = pick_delta(artifact.table(), salt);
        let next = Arc::new(artifact.apply(&delta).expect("valid delta"));
        let (allocs, _) = count(|| {
            session.rebase(&next).expect("direct successor");
            session.refresh().expect("feasible");
        });
        if session.last_refresh().resolved == 0 {
            worst_closed = worst_closed.max(allocs);
            closed_seen += 1;
        } else {
            worst_numeric = worst_numeric.max(allocs);
            numeric_seen += 1;
        }
        artifact = next;
    }
    assert!(
        closed_seen > 0 && numeric_seen > 0,
        "the salt schedule must exercise both refresh classes \
         (closed-form: {closed_seen}, numeric: {numeric_seen})"
    );

    println!(
        "allocations — build: {build_allocs}, first refresh: {first_refresh_allocs}, \
         worst closed-form steady refresh: {worst_closed}, \
         worst numeric steady refresh: {worst_numeric}"
    );

    // Closed-form refresh: O(dirty) bookkeeping only. The committed
    // ceiling has ~3x headroom over the measured ~340; one stray
    // per-component or per-term allocation in the hot path (partition
    // rebuild, estimate scatter, overlay rehash) blows straight through it.
    const CLOSED_FORM_ALLOC_CEILING: u64 = 1_200;
    assert!(
        worst_closed <= CLOSED_FORM_ALLOC_CEILING,
        "a no-solver steady-state refresh allocated {worst_closed} times, above \
         the committed ceiling {CLOSED_FORM_ALLOC_CEILING}: something in the \
         refresh path scales with the table again"
    );
    assert!(
        worst_closed * 4 <= first_refresh_allocs,
        "a no-solver steady-state refresh allocated {worst_closed} times — more \
         than 1/4 of the full first refresh ({first_refresh_allocs})"
    );

    // Numeric refresh: re-solving the dirty component must allocate
    // strictly less than the first refresh, which solved *every* relevant
    // component (and the dirty one among them).
    assert!(
        (worst_numeric as f64) <= first_refresh_allocs as f64 * 0.9,
        "a one-component steady-state refresh allocated {worst_numeric} times — \
         within 90% of the full first refresh ({first_refresh_allocs}); \
         re-solve allocations are no longer O(dirty components)"
    );
}
