//! Determinism of the engine under input permutation.
//!
//! The published table carries no meaning in its bucket *order* or in the
//! record order within a bucket, and the dataset carries none in its row
//! order — `P(S | Q)` must not depend on any of them. The partitioner's
//! fixed tie-breaking (`partition::connected_components` sorts components
//! by smallest bucket id, buckets and knowledge rows ascending) makes the
//! solve sequence deterministic for *one* input ordering; these tests check
//! the estimate is also stable across *reorderings* of the input.
//!
//! Floating-point note: permuting buckets permutes each component's local
//! term ordering, so sums accumulate in a different order and L-BFGS stops
//! at a *different near-optimal point* inside its tolerance ball (observed
//! deviations ~5e-8 on these workloads). The assertion is therefore
//! equality to 1e-6 — far below anything the privacy metrics can see — not
//! bit-equality, which only the thread-count equivalence tests can demand.

use pm_anonymize::published::PublishedTable;
use pm_datagen::adult::{AdultGenerator, AdultGeneratorConfig};
use pm_microdata::dataset::Dataset;
use privacy_maxent::engine::{Engine, EngineConfig, Estimate};
use privacy_maxent::knowledge::{Knowledge, KnowledgeBase};

const TOL: f64 = 1e-6;

fn base_data(records: usize, seed: u64) -> Dataset {
    AdultGenerator::new(AdultGeneratorConfig { records, seed }).generate()
}

/// Buckets of `chunk` consecutive rows (`from_partition` enforces no
/// diversity property, so this is a valid publication for the engine).
fn chunk_partition(n: usize, chunk: usize) -> Vec<Vec<usize>> {
    (0..n).step_by(chunk).map(|s| (s..(s + chunk).min(n)).collect()).collect()
}

/// Feasible-by-construction knowledge: exact empirical conditionals
/// `P(sa = s | attr = v)` read off the original data (the Section 4.2
/// guarantee — statements true of the data can never contradict the
/// published invariants).
fn empirical_kb(data: &Dataset) -> KnowledgeBase {
    let sa = data.schema().qi_attrs().len(); // SA is the last attribute
    let mut kb = KnowledgeBase::new();
    for (attr, v, s) in [(6usize, 1u16, 0u16), (4, 2, 1), (6, 0, 3)] {
        let joint = data.probability(&[attr, sa], &[v, s]);
        let marginal = data.probability(&[attr], &[v]);
        assert!(marginal > 0.0, "attr {attr} value {v} occurs in the data");
        kb.push(Knowledge::Conditional {
            antecedent: vec![(attr, v)],
            sa: s,
            probability: joint / marginal,
        })
        .expect("empirical conditional is valid knowledge");
    }
    kb
}

fn estimate(table: &PublishedTable, kb: &KnowledgeBase) -> Estimate {
    Engine::new(EngineConfig::builder().residual_limit(f64::INFINITY).build())
        .estimate(table, kb)
        .expect("empirical knowledge is feasible")
}

/// Compares `P(S | Q)` between two estimates whose tables may intern QI
/// tuples under different ids — rows are matched by tuple.
fn assert_same_conditionals(
    a: &Estimate,
    a_table: &PublishedTable,
    b: &Estimate,
    b_table: &PublishedTable,
    what: &str,
) {
    assert_eq!(a.distinct_qi(), b.distinct_qi(), "{what}: distinct QI count");
    assert_eq!(a.sa_cardinality(), b.sa_cardinality());
    for (qa, tuple, _) in a_table.interner().iter() {
        let qb = b_table
            .interner()
            .lookup(tuple)
            .unwrap_or_else(|| panic!("{what}: tuple {tuple:?} missing"));
        assert!(
            (a.qi_marginal(qa) - b.qi_marginal(qb)).abs() < TOL,
            "{what}: P(q) differs for {tuple:?}"
        );
        for s in 0..a.sa_cardinality() as u16 {
            let (pa, pb) = (a.conditional(qa, s), b.conditional(qb, s));
            assert!(
                (pa - pb).abs() < TOL,
                "{what}: P(s={s} | {tuple:?}) = {pa} vs {pb}"
            );
        }
    }
}

/// Reordering buckets (and rotating the records inside each) leaves the
/// estimate unchanged.
#[test]
fn estimate_invariant_under_bucket_permutation() {
    let data = base_data(400, 21);
    let partition = chunk_partition(data.len(), 5);
    let kb = empirical_kb(&data);
    let table = PublishedTable::from_partition(&data, &partition).unwrap();
    let reference = estimate(&table, &kb);

    // Reverse the bucket list and rotate every bucket's row list.
    let permuted: Vec<Vec<usize>> = partition
        .iter()
        .rev()
        .map(|rows| {
            let mut r = rows.clone();
            r.rotate_left(rows.len() / 2);
            r
        })
        .collect();
    let permuted_table = PublishedTable::from_partition(&data, &permuted).unwrap();
    let other = estimate(&permuted_table, &kb);

    assert_eq!(
        reference.stats.num_components, other.stats.num_components,
        "component structure is permutation-invariant"
    );
    assert_eq!(reference.stats.num_irrelevant, other.stats.num_irrelevant);
    assert_same_conditionals(&reference, &table, &other, &permuted_table, "bucket perm");
}

/// Reordering the dataset's records (with the partition following the
/// same permutation, so bucket *contents* are unchanged) leaves the
/// estimate unchanged, even though the QI interner assigns fresh ids.
#[test]
fn estimate_invariant_under_record_permutation() {
    let data = base_data(400, 22);
    let n = data.len();
    let partition = chunk_partition(n, 5);
    let kb = empirical_kb(&data);
    let table = PublishedTable::from_partition(&data, &partition).unwrap();
    let reference = estimate(&table, &kb);

    // Permute rows: reverse order. old row i lives at new position n-1-i.
    let mut permuted_data = Dataset::with_capacity(data.schema().clone(), n);
    for i in (0..n).rev() {
        permuted_data.push(data.record(i).values()).unwrap();
    }
    let permuted_partition: Vec<Vec<usize>> = partition
        .iter()
        .map(|rows| rows.iter().map(|&r| n - 1 - r).collect())
        .collect();
    let permuted_table =
        PublishedTable::from_partition(&permuted_data, &permuted_partition).unwrap();
    let other = estimate(&permuted_table, &kb);

    assert_eq!(reference.stats.num_components, other.stats.num_components);
    assert_same_conditionals(&reference, &table, &other, &permuted_table, "record perm");
}

/// Permutation invariance and thread invariance compose: a permuted table
/// solved on 8 threads matches the original solved sequentially.
#[test]
fn permutation_and_threads_compose() {
    let data = base_data(300, 23);
    let partition = chunk_partition(data.len(), 5);
    let kb = empirical_kb(&data);
    let table = PublishedTable::from_partition(&data, &partition).unwrap();
    let reference = Engine::new(
        EngineConfig::builder().threads(1).residual_limit(f64::INFINITY).build(),
    )
    .estimate(&table, &kb)
    .unwrap();

    let permuted: Vec<Vec<usize>> = partition.iter().rev().cloned().collect();
    let permuted_table = PublishedTable::from_partition(&data, &permuted).unwrap();
    let other = Engine::new(
        EngineConfig::builder().threads(8).residual_limit(f64::INFINITY).build(),
    )
    .estimate(&permuted_table, &kb)
    .unwrap();

    assert_same_conditionals(&reference, &table, &other, &permuted_table, "composed");
}
