//! Equivalence of batched and unbatched component solves.
//!
//! The engine fuses small Section 5.5 components into batched worker tasks
//! (`EngineConfig::batch_min_cost`) to amortize dispatch overhead. The
//! contract this file pins: batching is a *scheduling* decision — for any
//! seeded workload, every batch-cost floor × thread-count combination
//! produces **bit-identical** estimates to the unbatched sequential solve
//! (`batch_min_cost = 0`, `threads = 1`), including across knowledge
//! add/remove, refresh and table-delta rebase interleavings in a live
//! session.

use std::sync::Arc;

use pm_anonymize::anatomy::{AnatomyBucketizer, AnatomyConfig};
use pm_anonymize::published::PublishedTable;
use pm_assoc::miner::{MinerConfig, RuleMiner};
use pm_datagen::adult::{AdultGenerator, AdultGeneratorConfig};
use privacy_maxent::analyst::{Analyst, KnowledgeHandle};
use privacy_maxent::compiled::CompiledTable;
use privacy_maxent::delta::TableDelta;
use privacy_maxent::engine::{Engine, EngineConfig, Estimate};
use privacy_maxent::knowledge::{Knowledge, KnowledgeBase};
use proptest::prelude::*;

/// Batch-cost floors exercised against the unbatched reference: singleton
/// batches (0), a floor below any real component (1, still singletons),
/// the engine default, and one batch holding the entire dirty set.
const BATCH_COSTS: [u64; 4] = [1, 1024, 65_536, u64::MAX];

fn config(threads: usize, batch_cost: u64) -> EngineConfig {
    EngineConfig::builder()
        .threads(threads)
        .batch_min_cost(batch_cost)
        .residual_limit(f64::INFINITY)
        .build()
}

/// Seeded Adult-like workload: publication + mined Top-(K+, K−) knowledge.
fn workload(records: usize, seed: u64, k: usize) -> (PublishedTable, Vec<Knowledge>) {
    let data = AdultGenerator::new(AdultGeneratorConfig { records, seed }).generate();
    let table = AnatomyBucketizer::new(AnatomyConfig { ell: 5, exempt_top: 1 })
        .publish(&data)
        .expect("bucketization succeeds");
    let rules = RuleMiner::new(MinerConfig { min_support: 3, arities: vec![1, 2] })
        .mine(&data);
    let items = rules
        .top_k(k / 2, k - k / 2)
        .iter()
        .map(|r| Knowledge::from_rule(r, data.schema()).expect("mined rules are valid"))
        .collect();
    (table, items)
}

fn estimate(table: &PublishedTable, items: &[Knowledge], cfg: EngineConfig) -> Estimate {
    let mut kb = KnowledgeBase::new();
    for item in items {
        kb.push(item.clone()).expect("mined knowledge is valid");
    }
    Engine::new(cfg).estimate(table, &kb).expect("mined knowledge is feasible")
}

/// Every observable of the two estimates is bitwise equal.
fn assert_bit_identical(reference: &Estimate, other: &Estimate, what: &str) {
    assert_eq!(
        reference.term_values(),
        other.term_values(),
        "{what}: raw P(q, s, b) terms differ"
    );
    for q in 0..reference.distinct_qi() {
        assert_eq!(
            reference.conditional_row(q),
            other.conditional_row(q),
            "{what}: P(S | q={q}) differs"
        );
    }
    assert_eq!(
        reference.stats.num_components, other.stats.num_components,
        "{what}: component structure differs"
    );
    assert_eq!(
        reference.stats.num_constraints, other.stats.num_constraints,
        "{what}: reduced constraint count differs"
    );
    assert_eq!(
        reference.stats.num_free_terms, other.stats.num_free_terms,
        "{what}: free-term count differs"
    );
}

/// A valid single-record table delta drawn from the table's own multisets.
fn pick_delta(table: &PublishedTable, op: usize, bucket_sel: usize, rec_sel: usize) -> TableDelta {
    let m = table.num_buckets();
    let b = bucket_sel % m;
    let bucket = table.bucket(b);
    let q = bucket.qi_counts()[rec_sel % bucket.distinct_qi()].0;
    let s = bucket.sa_counts()[rec_sel % bucket.distinct_sa()].0;
    let tuple = table.interner().tuple(q).to_vec();
    match op % 3 {
        0 => TableDelta::new().insert(tuple, s, (b + 1) % m),
        1 => TableDelta::new().retract(tuple, s, b),
        _ => TableDelta::new().move_record(tuple, s, b, (b + 1) % m),
    }
}

/// Replays one knowledge/delta/refresh tape in a session opened with `cfg`
/// and returns the final estimate's raw term values.
fn replay_tape(
    table: &PublishedTable,
    items: &[Knowledge],
    ops: &[(usize, usize, usize)],
    cfg: EngineConfig,
) -> Vec<f64> {
    let mut artifact =
        Arc::new(CompiledTable::build(table.clone(), cfg).expect("baseline solves"));
    let mut session = Analyst::open(Arc::clone(&artifact));
    let mut next = 0usize;
    let mut live: Vec<KnowledgeHandle> = Vec::new();
    for &(op, sel_a, sel_b) in ops {
        match op {
            0 if next < items.len() => {
                live.push(session.add_knowledge(items[next].clone()).expect("compiles"));
                next += 1;
            }
            1 if !live.is_empty() => {
                let h = live.remove(sel_a % live.len());
                session.remove_knowledge(h).expect("handle is live");
            }
            2 => {
                let delta = pick_delta(artifact.table(), sel_a, sel_b, sel_a);
                let next_epoch =
                    Arc::new(artifact.apply(&delta).expect("selector picks valid records"));
                // A delta that starves some rule's antecedent is rejected
                // atomically; the tape simply carries on — identically in
                // every configuration, since validity is config-independent.
                if session.rebase(&next_epoch).is_ok() {
                    artifact = next_epoch;
                }
            }
            _ => {
                session.refresh().expect("mined knowledge is feasible");
            }
        }
    }
    session.refresh().expect("mined knowledge is feasible");
    session.estimate().term_values().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// One-shot solves: every batch-cost floor × thread count agrees
    /// bitwise with the unbatched sequential reference.
    #[test]
    fn batched_estimate_is_bit_identical(seed in 1u64..10_000, k in 20usize..80) {
        let (table, items) = workload(600, seed, k);
        let reference = estimate(&table, &items, config(1, 0));
        for batch_cost in BATCH_COSTS {
            for threads in [1usize, 2, 8, 0] {
                let batched = estimate(&table, &items, config(threads, batch_cost));
                assert_bit_identical(
                    &reference,
                    &batched,
                    &format!("seed={seed} k={k} threads={threads} batch_cost={batch_cost}"),
                );
            }
        }
    }

    /// Session tapes: a random interleaving of knowledge adds/removes,
    /// refreshes and table-delta rebases converges to the same bytes under
    /// every batching configuration as under the unbatched sequential one.
    #[test]
    fn batched_session_tapes_are_bit_identical(
        seed in 1u64..10_000,
        k in 12usize..30,
        ops in proptest::collection::vec((0usize..4, 0usize..1000, 0usize..1000), 5..12),
    ) {
        let (table, items) = workload(450, seed, k);
        let reference = replay_tape(&table, &items, &ops, config(1, 0));
        for (threads, batch_cost) in
            [(1usize, 1024u64), (2, 1024), (8, u64::MAX), (0, 1)]
        {
            let batched = replay_tape(&table, &items, &ops, config(threads, batch_cost));
            prop_assert_eq!(
                &reference,
                &batched,
                "seed={} k={} threads={} batch_cost={} ops={:?}",
                seed, k, threads, batch_cost, ops
            );
        }
    }
}

/// The engine-default batching configuration also matches on a workload
/// big enough that batches genuinely fuse many components (no proptest:
/// one deterministic heavyweight case).
#[test]
fn default_batching_matches_unbatched_at_scale() {
    let (table, items) = workload(900, 42, 60);
    let reference = estimate(&table, &items, config(1, 0));
    let default_cfg = EngineConfig::default();
    assert!(default_cfg.batch_min_cost > 0, "default must actually batch");
    for threads in [1usize, 2] {
        let batched = estimate(&table, &items, config(threads, default_cfg.batch_min_cost));
        assert_bit_identical(&reference, &batched, &format!("default batching, threads={threads}"));
    }
}
