//! Concurrent sharing of one `CompiledTable` artifact.
//!
//! The compile-once / serve-many contract: N sessions opened or forked
//! from one `Arc<CompiledTable>` — each interleaving its own
//! add/remove/refresh tape on its own OS thread — must each land on the
//! exact bits of a from-scratch `Engine::estimate` holding that session's
//! final knowledge set. The artifact is immutable and sessions share
//! overlay slices copy-on-write, so no interleaving of thread schedules
//! may be observable in any result.

use std::sync::Arc;

use pm_anonymize::anatomy::{AnatomyBucketizer, AnatomyConfig};
use pm_anonymize::published::PublishedTable;
use pm_assoc::miner::{MinerConfig, RuleMiner};
use pm_datagen::adult::{AdultGenerator, AdultGeneratorConfig};
use privacy_maxent::analyst::{Analyst, KnowledgeHandle};
use privacy_maxent::compiled::CompiledTable;
use privacy_maxent::engine::{Engine, EngineConfig, Estimate};
use privacy_maxent::knowledge::{Knowledge, KnowledgeBase};
use proptest::prelude::*;

fn config() -> EngineConfig {
    EngineConfig::builder().residual_limit(f64::INFINITY).threads(1).build()
}

/// Seeded Adult-like workload: publication + mined Top-(K+, K−) knowledge
/// as individual items the session tapes feed one at a time.
fn workload(records: usize, seed: u64, k: usize) -> (PublishedTable, Vec<Knowledge>) {
    let data = AdultGenerator::new(AdultGeneratorConfig { records, seed }).generate();
    let table = AnatomyBucketizer::new(AnatomyConfig { ell: 5, exempt_top: 1 })
        .publish(&data)
        .expect("bucketization succeeds");
    let rules = RuleMiner::new(MinerConfig { min_support: 3, arities: vec![1, 2] })
        .mine(&data);
    let items = rules
        .top_k(k / 2, k - k / 2)
        .iter()
        .map(|r| Knowledge::from_rule(r, data.schema()).expect("mined rules are valid"))
        .collect();
    (table, items)
}

/// Drives one session through an op tape (0 = add the next private item,
/// 1 = remove a live item, 2 = refresh), then refreshes once more so no
/// delta is left pending. Returns the final knowledge set in insertion
/// order plus the final term values.
fn drive_tape(
    mut session: Analyst,
    items: &[Knowledge],
    tape: &[usize],
) -> (Vec<Knowledge>, Vec<f64>) {
    let mut next = 0usize;
    let mut live: Vec<KnowledgeHandle> = session.knowledge().map(|(h, _)| h).collect();
    for &op in tape {
        match op {
            0 if next < items.len() => {
                live.push(session.add_knowledge(items[next].clone()).expect("compiles"));
                next += 1;
            }
            1 if !live.is_empty() => {
                let h = live.remove(live.len() / 2);
                session.remove_knowledge(h).expect("handle is live");
            }
            _ => {
                session.refresh().expect("mined knowledge is feasible");
            }
        }
    }
    session.refresh().expect("mined knowledge is feasible");
    let final_items = session.knowledge().map(|(_, k)| k.clone()).collect();
    (final_items, session.estimate().term_values().to_vec())
}

fn from_scratch(table: &PublishedTable, items: &[Knowledge]) -> Estimate {
    let mut kb = KnowledgeBase::new();
    for item in items {
        kb.push(item.clone()).expect("valid knowledge");
    }
    Engine::new(config()).estimate(table, &kb).expect("feasible")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The ISSUE's concurrency property: N threads open/fork sessions from
    /// one `Arc<CompiledTable>`, interleave add/remove/refresh on disjoint
    /// private item slices, and each final estimate is bit-identical to a
    /// from-scratch solve of that thread's knowledge set.
    #[test]
    fn concurrent_sessions_match_from_scratch_bitwise(
        seed in 1u64..10_000,
        k in 24usize..48,
        tapes in proptest::collection::vec(
            proptest::collection::vec(0usize..3, 6..14),
            3..5,
        ),
    ) {
        let (table, items) = workload(450, seed, k);
        let artifact =
            Arc::new(CompiledTable::build(table.clone(), config()).expect("baseline solves"));

        // A shared base session some threads fork from; the rest open
        // fresh sessions and replay the base items themselves.
        let (base_items, private) = items.split_at(items.len() / 4);
        let mut base = Analyst::open(Arc::clone(&artifact));
        base.add_knowledge_batch(base_items).expect("base compiles");
        base.refresh().expect("base is feasible");

        // Disjoint private item slices, one per thread.
        let n = tapes.len();
        let per = private.len() / n;
        let results = pm_parallel::broadcast(n, |i| {
            let slice = &private[i * per..(i + 1) * per];
            let session = if i % 2 == 0 {
                base.fork()
            } else {
                let mut fresh = Analyst::open(Arc::clone(&artifact));
                fresh.add_knowledge_batch(base_items).expect("base compiles");
                fresh
            };
            drive_tape(session, slice, &tapes[i])
        });

        // Every thread's final bits must equal its own from-scratch solve.
        for (i, (final_items, bits)) in results.iter().enumerate() {
            let scratch = from_scratch(&table, final_items);
            prop_assert_eq!(
                bits.as_slice(),
                scratch.term_values(),
                "thread {} (of {}) diverged from its from-scratch solve; tape {:?}",
                i,
                n,
                &tapes[i]
            );
        }

        // …and the shared base session is untouched by all of it.
        let base_scratch = from_scratch(&table, base_items);
        prop_assert_eq!(base.estimate().term_values(), base_scratch.term_values());
    }
}

/// Snapshots taken before a refresh keep serving the old estimate from
/// reader threads while the owning session refreshes and moves on.
#[test]
fn snapshots_serve_readers_across_refreshes() {
    let (table, items) = workload(400, 11, 16);
    let artifact = Arc::new(CompiledTable::build(table, config()).expect("baseline solves"));
    let mut session = Analyst::open(Arc::clone(&artifact));
    let before = session.snapshot();
    let before_bits = before.term_values().to_vec();

    session.add_knowledge_batch(&items).expect("compiles");
    session.refresh().expect("feasible");
    let after = session.snapshot();
    assert_ne!(after.term_values(), before_bits.as_slice());

    // Reader threads hold the snapshots while the session keeps evolving.
    let readers = pm_parallel::broadcast(4, |i| {
        let snap = if i % 2 == 0 { Arc::clone(&before) } else { Arc::clone(&after) };
        snap.term_values().to_vec()
    });
    for (i, bits) in readers.iter().enumerate() {
        if i % 2 == 0 {
            assert_eq!(bits.as_slice(), before_bits.as_slice(), "reader {i} lost its view");
        } else {
            assert_eq!(bits.as_slice(), after.term_values(), "reader {i} lost its view");
        }
    }
}

/// Deep fork trees stay independent: a chain of forks each adding one more
/// rule, every node bit-identical to its own from-scratch solve.
#[test]
fn fork_chains_are_exact_at_every_depth() {
    let (table, items) = workload(400, 23, 12);
    let artifact =
        Arc::new(CompiledTable::build(table.clone(), config()).expect("baseline solves"));
    let mut sessions = vec![Analyst::open(Arc::clone(&artifact))];
    let depth = 4.min(items.len());
    for item in items.iter().take(depth) {
        let mut next = sessions.last().unwrap().fork();
        let _ = next.add_knowledge(item.clone()).expect("compiles");
        next.refresh().expect("feasible");
        sessions.push(next);
    }
    for (d, session) in sessions.iter().enumerate() {
        let scratch = from_scratch(&table, &items[..d]);
        assert_eq!(
            session.estimate().term_values(),
            scratch.term_values(),
            "fork depth {d} diverged"
        );
    }
}
