// Known-bad fixture for the determinism rule: wall-clock reads and
// hash-ordered iteration on the solve path.
fn solve_badly(counts: HashMap<u64, f64>) {
    let started = Instant::now();
    let stamp = SystemTime::now();
    for (k, v) in counts.iter() {
        accumulate(k, v);
    }
}
