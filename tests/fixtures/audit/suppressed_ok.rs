// Suppression round-trip fixture: every violation below carries a valid
// pragma, so auditing this file yields zero diagnostics and two
// suppressions.
fn timed_solve() {
    let start = Instant::now(); // pm-audit: allow(determinism, reason = "telemetry only")
    // pm-audit: allow(determinism, reason = "stats stamp, not result bytes")
    let stamp = SystemTime::now();
}
