// Pragma-hygiene fixture: a reasonless pragma must not suppress, an
// unknown rule id is a typo, and an unused pragma is stale.
fn f() {
    let start = Instant::now(); // pm-audit: allow(determinism)
    let x = compute(); // pm-audit: allow(determinsm, reason = "typo'd rule id")
    let y = more(); // pm-audit: allow(lock-order, reason = "suppresses nothing here")
}
