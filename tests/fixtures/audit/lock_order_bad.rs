// Known-bad fixture for the lock-order rule: the chain lock must never be
// acquired while a `tenants` guard is live (AB-BA with apply_delta).
impl Registry {
    fn open_tenant_badly(&self) {
        let mut tenants = self.tenants.write();
        let latest = self.latest();
        tenants.insert(latest);
    }
}
