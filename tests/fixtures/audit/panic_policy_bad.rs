// Known-bad fixture for the panic-policy rule: panic sites in the serve
// hot path, plus a test module the rule must exempt.
fn handle(buf: &[u8]) {
    let first = buf[0];
    let n = parse(buf).unwrap();
    let m = decode(buf).expect("decode");
    panic!("boom");
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v = vec![1];
        assert_eq!(v[0], parse(&v).unwrap());
    }
}
