// Known-bad fixture for the error-code-range rule: a duplicated
// discriminant and a Fatal-documented variant in the application range.
pub enum ErrorCode {
    /// Frame too large. Fatal.
    FrameTooLarge = 1,
    /// Handshake missing. Fatal.
    HandshakeRequired = 1,
    /// Slow consumer shed. Fatal.
    SlowConsumer = 108,
}
