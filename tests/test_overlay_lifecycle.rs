//! Structural-sharing lifecycle of the flat session overlay.
//!
//! The session's solution overlay is one shared flat value buffer plus a
//! bucket → `(offset, len)` slot table. These tests pin the *mechanism*,
//! not just the values: fork copy-on-write is proven by buffer pointer
//! identity, steady-state refresh by slot/pointer reuse, and rebase by
//! slot-table surgery — so a regression to per-bucket cloning (bytes would
//! still be equal!) fails loudly.

use std::sync::Arc;

use pm_anonymize::anatomy::{AnatomyBucketizer, AnatomyConfig};
use pm_anonymize::published::PublishedTable;
use pm_assoc::miner::{MinerConfig, RuleMiner};
use pm_datagen::adult::{AdultGenerator, AdultGeneratorConfig};
use privacy_maxent::analyst::Analyst;
use privacy_maxent::compiled::CompiledTable;
use privacy_maxent::delta::TableDelta;
use privacy_maxent::engine::EngineConfig;
use privacy_maxent::knowledge::Knowledge;

fn config() -> EngineConfig {
    EngineConfig::builder().threads(1).residual_limit(f64::INFINITY).build()
}

/// Seeded workload: publication + mined knowledge items.
fn workload(records: usize, seed: u64, k: usize) -> (PublishedTable, Vec<Knowledge>) {
    let data = AdultGenerator::new(AdultGeneratorConfig { records, seed }).generate();
    let table = AnatomyBucketizer::new(AnatomyConfig { ell: 5, exempt_top: 1 })
        .publish(&data)
        .expect("bucketization succeeds");
    let rules = RuleMiner::new(MinerConfig { min_support: 3, arities: vec![1, 2] })
        .mine(&data);
    let items = rules
        .top_k(k / 2, k - k / 2)
        .iter()
        .map(|r| Knowledge::from_rule(r, data.schema()).expect("mined rules are valid"))
        .collect();
    (table, items)
}

/// A refreshed session with overlay slots populated.
fn refreshed_session(records: usize, seed: u64, k: usize) -> (Arc<CompiledTable>, Analyst) {
    let (table, items) = workload(records, seed, k);
    let artifact = Arc::new(CompiledTable::build(table, config()).expect("baseline solves"));
    let mut session = Analyst::open(Arc::clone(&artifact));
    session.add_knowledge_batch(&items).expect("knowledge compiles");
    session.refresh().expect("mined knowledge is feasible");
    assert!(session.overlay_len() > 0, "workload must populate overlay slots");
    (artifact, session)
}

/// Removes and re-adds one footprint-bearing knowledge item, then
/// refreshes: the minimal session write that forces a numeric re-solve of
/// that item's components (and thus an overlay store) while leaving the
/// estimate's bytes unchanged. Items whose compiled constraint touches no
/// terms dirty nothing and are skipped.
fn churn_one_item(session: &mut Analyst) {
    let handles: Vec<_> = session.knowledge().map(|(h, _)| h).collect();
    for h in handles {
        let before = session.pending_buckets();
        let item = session.remove_knowledge(h).expect("handle is live");
        let dirtied = session.pending_buckets() > before;
        let _ = session.add_knowledge(item).expect("item recompiles");
        if dirtied {
            session.refresh().expect("feasible");
            return;
        }
    }
    panic!("no knowledge item has a non-empty bucket footprint");
}

/// The overlay slots present in a session, as (bucket, offset, len).
fn live_slots(session: &Analyst) -> Vec<(usize, usize, usize)> {
    let m = session.table().num_buckets();
    (0..m)
        .filter_map(|b| session.overlay_slot(b).map(|(o, l)| (b, o, l)))
        .collect()
}

#[test]
fn fork_shares_the_buffer_until_first_write_then_cow_breaks() {
    let (_artifact, mut parent) = refreshed_session(500, 3, 24);
    let fork = parent.fork();

    // A fork is a reference bump: same buffer, same slots.
    assert!(parent.overlay_shares_buffer_with(&fork));
    assert_eq!(parent.overlay_buffer_ptr(), fork.overlay_buffer_ptr());
    assert_eq!(live_slots(&parent), live_slots(&fork));

    // First overlay store on the parent (a refresh re-solving a knowledge
    // footprint) breaks the sharing; the fork's bytes are untouched —
    // pointer-identical, not merely value-equal.
    let fork_ptr = fork.overlay_buffer_ptr();
    let fork_values = fork.estimate().term_values().to_vec();
    churn_one_item(&mut parent);
    assert!(
        !parent.overlay_shares_buffer_with(&fork),
        "a refresh on one side must not keep the buffers shared"
    );
    assert_eq!(fork.overlay_buffer_ptr(), fork_ptr, "fork's buffer must not move");
    assert_eq!(
        fork.estimate().term_values(),
        &fork_values[..],
        "fork's served estimate must be unaffected by the parent's write"
    );
}

#[test]
fn fork_side_writes_leave_the_parent_buffer_alone() {
    let (_artifact, parent) = refreshed_session(500, 5, 24);
    let mut fork = parent.fork();
    let parent_ptr = parent.overlay_buffer_ptr();
    let parent_slots = live_slots(&parent);

    churn_one_item(&mut fork);

    assert!(!fork.overlay_shares_buffer_with(&parent));
    assert_eq!(parent.overlay_buffer_ptr(), parent_ptr, "parent's buffer must not move");
    assert_eq!(live_slots(&parent), parent_slots, "parent's slots must not move");
}

#[test]
fn steady_state_refresh_writes_in_place() {
    let (_artifact, mut session) = refreshed_session(500, 7, 24);
    let ptr = session.overlay_buffer_ptr();
    let slots = live_slots(&session);

    // Dirty a knowledge footprint (remove + re-add an item) and refresh:
    // every re-solved bucket has an identically sized slot, so the overlay
    // must rewrite in place — same buffer, same slots.
    churn_one_item(&mut session);

    assert_eq!(
        session.overlay_buffer_ptr(),
        ptr,
        "steady-state refresh must not reallocate the flat buffer"
    );
    assert_eq!(
        live_slots(&session),
        slots,
        "steady-state refresh must reuse every slot in place"
    );
}

#[test]
fn snapshot_taken_before_a_refresh_keeps_serving_the_old_epoch() {
    let (artifact, mut session) = refreshed_session(450, 11, 20);
    let snap = session.snapshot();
    let snap_values = snap.term_values().to_vec();
    let old_epoch = artifact.epoch();
    assert_eq!(snap.epoch(), old_epoch);

    // Advance the table one epoch and rebase. The session is now stale
    // mid-lifecycle: the snapshot must keep serving the old epoch's bytes.
    let b = 0;
    let bucket = artifact.table().bucket(b);
    let q = bucket.qi_counts()[0].0;
    let s = bucket.sa_counts()[0].0;
    let tuple = artifact.table().interner().tuple(q).to_vec();
    let delta = TableDelta::new().move_record(tuple, s, b, 1);
    let next = Arc::new(artifact.apply(&delta).expect("valid delta"));
    session.rebase(&next).expect("direct successor");

    assert_eq!(session.overlay_epoch(), next.epoch(), "overlay layout rebases eagerly");
    assert_eq!(snap.epoch(), old_epoch, "snapshot stays on the old epoch");
    assert_eq!(snap.term_values(), &snap_values[..]);

    // Even after the refresh completes, the pre-refresh snapshot is a
    // consistent, immutable view of the old epoch.
    session.refresh().expect("feasible");
    assert_eq!(session.estimate().epoch(), next.epoch());
    assert_eq!(snap.epoch(), old_epoch);
    assert_eq!(snap.term_values(), &snap_values[..]);
}

#[test]
fn rebase_drops_touched_slots_and_carries_the_rest_verbatim() {
    let (artifact, mut session) = refreshed_session(500, 13, 24);
    let before = live_slots(&session);

    let b = before[0].0; // a bucket that certainly has a slot
    let bucket = artifact.table().bucket(b);
    let q = bucket.qi_counts()[0].0;
    let s = bucket.sa_counts()[0].0;
    let tuple = artifact.table().interner().tuple(q).to_vec();
    let delta = TableDelta::new().retract(tuple, s, b);
    let next = Arc::new(artifact.apply(&delta).expect("valid delta"));
    let touched = next.applied_delta().expect("successor carries delta").touched_buckets().to_vec();
    let stats = session.rebase(&next).expect("direct successor");

    assert_eq!(session.overlay_epoch(), next.epoch());
    assert_eq!(stats.carried, session.overlay_len(), "carried counts live slots");
    for &(bucket, offset, len) in &before {
        match session.overlay_slot(bucket) {
            None => assert!(
                touched.contains(&bucket),
                "bucket {bucket}: only touched buckets may lose their slot"
            ),
            Some(slot) => {
                assert!(!touched.contains(&bucket), "bucket {bucket}: touched slot survived");
                assert_eq!(
                    slot,
                    (offset, len),
                    "bucket {bucket}: untouched slots carry verbatim (no move, no resize)"
                );
            }
        }
    }
    assert!(
        before.iter().any(|&(bucket, _, _)| touched.contains(&bucket)),
        "the delta must have hit at least one overlaid bucket for this test to bite"
    );
}
