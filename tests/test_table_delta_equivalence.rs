//! Equivalence of the live-table epoch chain and from-scratch compilation.
//!
//! The `TableDelta` design's central contract: advancing a `CompiledTable`
//! through any chain of record-level deltas — with resident sessions
//! rebasing across each epoch while their knowledge set evolves — is
//! **bit-identical** to building the post-delta table from scratch and
//! replaying the same knowledge set (same insertion order), for every
//! thread count. The incremental history (which buckets were recompiled,
//! which components re-solved, which overlay slices carried) must be
//! unobservable in the served estimate.

use std::sync::Arc;

use pm_anonymize::anatomy::{AnatomyBucketizer, AnatomyConfig};
use pm_anonymize::published::PublishedTable;
use pm_assoc::miner::{MinerConfig, RuleMiner};
use pm_datagen::adult::{AdultGenerator, AdultGeneratorConfig};
use privacy_maxent::analyst::{Analyst, KnowledgeHandle};
use privacy_maxent::compiled::CompiledTable;
use privacy_maxent::delta::TableDelta;
use privacy_maxent::engine::EngineConfig;
use privacy_maxent::knowledge::Knowledge;
use proptest::prelude::*;

fn config(threads: usize) -> EngineConfig {
    EngineConfig::builder().threads(threads).residual_limit(f64::INFINITY).build()
}

/// Seeded Adult-like workload: publication + mined knowledge items.
fn workload(records: usize, seed: u64, k: usize) -> (PublishedTable, Vec<Knowledge>) {
    let data = AdultGenerator::new(AdultGeneratorConfig { records, seed }).generate();
    let table = AnatomyBucketizer::new(AnatomyConfig { ell: 5, exempt_top: 1 })
        .publish(&data)
        .expect("bucketization succeeds");
    let rules = RuleMiner::new(MinerConfig { min_support: 3, arities: vec![1, 2] })
        .mine(&data);
    let items = rules
        .top_k(k / 2, k - k / 2)
        .iter()
        .map(|r| Knowledge::from_rule(r, data.schema()).expect("mined rules are valid"))
        .collect();
    (table, items)
}

/// Builds a *valid* single-record delta from a selector triple: the record
/// is drawn from the table's own multisets (so retract/move claims hold),
/// with op 0 = insert, 1 = retract, 2 = move to the next bucket, 3 = insert
/// a record with a never-before-seen QI tuple (interner growth).
fn pick_delta(table: &PublishedTable, op: usize, bucket_sel: usize, rec_sel: usize) -> TableDelta {
    let m = table.num_buckets();
    let b = bucket_sel % m;
    let bucket = table.bucket(b);
    let q = bucket.qi_counts()[rec_sel % bucket.distinct_qi()].0;
    let s = bucket.sa_counts()[rec_sel % bucket.distinct_sa()].0;
    let mut tuple = table.interner().tuple(q).to_vec();
    match op % 4 {
        0 => TableDelta::new().insert(tuple, s, (b + 1) % m),
        1 => TableDelta::new().retract(tuple, s, b),
        2 => TableDelta::new().move_record(tuple, s, b, (b + 1) % m),
        _ => {
            // A fresh tuple no schema produced: out-of-vocabulary codes are
            // legal at the published-table level and exercise interner and
            // QI→bucket index growth across the epoch.
            tuple[0] += 1000 + rec_sel as u16;
            TableDelta::new().insert(tuple, s, b)
        }
    }
}

/// From-scratch comparator: compile the given table, replay `items` in
/// order, refresh once.
fn from_scratch(table: &PublishedTable, items: &[Knowledge], threads: usize) -> Analyst {
    let mut scratch =
        Analyst::new(table.clone(), config(threads)).expect("baseline solves");
    scratch.add_knowledge_batch(items).expect("knowledge compiles");
    scratch.refresh().expect("mined knowledge is feasible");
    scratch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The ISSUE's property: a random tape interleaving table deltas
    /// (insert / retract / move), knowledge adds/removes and refreshes —
    /// with the session rebasing across every epoch — stays bit-identical
    /// to a from-scratch compile-and-replay of the materialized table, for
    /// threads 1 / 2 / auto.
    #[test]
    fn delta_knowledge_interleavings_match_from_scratch(
        seed in 1u64..10_000,
        k in 15usize..40,
        ops in proptest::collection::vec((0usize..5, 0usize..1000, 0usize..1000), 6..16),
    ) {
        let (table, items) = workload(500, seed, k);
        let mut artifact = Arc::new(
            CompiledTable::build(table, config(2)).expect("baseline solves"),
        );
        let mut session = Analyst::open(Arc::clone(&artifact));
        let mut next = 0usize;
        let mut live: Vec<KnowledgeHandle> = Vec::new();
        for &(op, sel_a, sel_b) in &ops {
            match op {
                // Knowledge delta: add the next mined item.
                0 if next < items.len() => {
                    live.push(session.add_knowledge(items[next].clone()).expect("compiles"));
                    next += 1;
                }
                // Knowledge delta: retract a live item.
                1 if !live.is_empty() => {
                    let h = live.remove(sel_a % live.len());
                    session.remove_knowledge(h).expect("handle is live");
                }
                // Table delta: advance the epoch and rebase. A delta that
                // invalidates some rule (retraction starves its antecedent)
                // is discarded — the atomicity half of the contract.
                2 | 3 => {
                    let delta = pick_delta(artifact.table(), sel_a, sel_b, sel_a);
                    let next_epoch =
                        Arc::new(artifact.apply(&delta).expect("selector picks valid records"));
                    match session.rebase(&next_epoch) {
                        Ok(stats) => {
                            prop_assert_eq!(stats.epoch, next_epoch.epoch());
                            artifact = next_epoch;
                        }
                        Err(e) => {
                            prop_assert!(
                                matches!(e, privacy_maxent::error::PmError::InvalidKnowledge { .. }),
                                "unexpected rebase failure: {:?}", e
                            );
                        }
                    }
                }
                _ => {
                    session.refresh().expect("mined knowledge is feasible");
                }
            }
        }
        session.refresh().expect("mined knowledge is feasible");
        prop_assert!(!session.is_stale());

        // Every epoch advance must be bit-unobservable: compile the final
        // table from scratch and replay the final knowledge set.
        let final_items: Vec<Knowledge> = session.knowledge().map(|(_, k)| k.clone()).collect();
        for threads in [1usize, 2, 0] {
            let scratch = from_scratch(artifact.table(), &final_items, threads);
            prop_assert_eq!(
                session.estimate().term_values(),
                scratch.estimate().term_values(),
                "seed={} k={} threads={} ops={:?}", seed, k, threads, ops
            );
            for q in 0..scratch.estimate().distinct_qi() {
                prop_assert_eq!(
                    session.estimate().conditional_row(q),
                    scratch.estimate().conditional_row(q),
                    "P(S | q={}) differs", q
                );
            }
        }
        prop_assert_eq!(session.estimate().epoch(), artifact.epoch());
    }
}

/// Epoch advances at scale recompile only the delta's bucket footprint, the
/// rebased refresh re-solves a strict subset of components, and each epoch
/// matches from-scratch bitwise.
#[test]
fn epoch_chain_is_incremental_and_exact_at_scale() {
    let (table, items) = workload(900, 42, 40);
    let mut artifact =
        Arc::new(CompiledTable::build(table, config(2)).expect("baseline solves"));
    let mut session = Analyst::open(Arc::clone(&artifact));
    session.add_knowledge_batch(&items).unwrap();
    session.refresh().unwrap();

    for step in 0..4usize {
        let delta = pick_delta(artifact.table(), step, step * 7 + 1, step * 13 + 3);
        let next = Arc::new(artifact.apply(&delta).unwrap());

        // Structural sharing: every untouched bucket is pointer-shared.
        let touched = next.applied_delta().unwrap().touched_buckets().to_vec();
        assert_eq!(next.stats().recompiled_buckets, touched.len());
        let m = artifact.table().num_buckets();
        assert!(touched.len() < m / 4, "a single-record delta must stay local");
        for b in 0..m {
            assert_eq!(
                next.bucket_shared_with(&artifact, b),
                !touched.contains(&b),
                "bucket {b} sharing is wrong (touched: {touched:?})"
            );
        }

        match session.rebase(&next) {
            Ok(_) => artifact = next,
            Err(e) => panic!("step {step}: rebase failed: {e}"),
        }
        let stats = session.refresh().unwrap();
        assert!(
            stats.resolved + stats.closed_form < stats.components,
            "step {step}: rebase re-solved {} of {} components",
            stats.resolved + stats.closed_form,
            stats.components
        );
        assert!(stats.reused > 0, "step {step}: nothing was reused");

        let final_items: Vec<Knowledge> = session.knowledge().map(|(_, k)| k.clone()).collect();
        let scratch = from_scratch(artifact.table(), &final_items, 1);
        assert_eq!(
            session.estimate().term_values(),
            scratch.estimate().term_values(),
            "step {step}: rebased estimate diverged from from-scratch"
        );
    }
    assert_eq!(session.epoch(), 4);
}

/// The no-op fast path: an empty delta advances the epoch without dirtying
/// anything — zero buckets recompiled, the session's next refresh is the
/// trivial fast path, and the served estimate stays **pointer-equal**.
#[test]
fn noop_delta_fast_path_is_pointer_equal() {
    let (table, items) = workload(400, 7, 10);
    let e0 = Arc::new(CompiledTable::build(table, config(1)).unwrap());
    let mut session = Analyst::open(Arc::clone(&e0));
    session.add_knowledge_batch(&items).unwrap();
    session.refresh().unwrap();
    let before = session.snapshot();

    let e1 = Arc::new(e0.apply(&TableDelta::new()).unwrap());
    assert_eq!(e1.stats().recompiled_buckets, 0);
    let stats = session.rebase(&e1).unwrap();
    assert_eq!(stats.touched_buckets, 0, "no buckets dirtied");
    assert_eq!(stats.recompiled, 0, "no knowledge recompiled");
    assert!(!session.is_stale(), "no-op rebase leaves nothing pending");
    session.refresh().unwrap();
    assert!(
        Arc::ptr_eq(&before, &session.snapshot()),
        "no-op delta must leave the served estimate pointer-equal"
    );
    assert_eq!(session.epoch(), 1);
}
