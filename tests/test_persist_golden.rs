//! Format-stability golden fixture.
//!
//! `tests/fixtures/persist/` holds a committed snapshot of the paper's
//! Figure 1 artifact plus a 3-epoch WAL, produced by the `#[ignore]`d
//! `regenerate_golden_fixture` test below. The stability tests re-encode
//! the same artifact today and require byte equality with the fixture:
//! **any** encoding drift — field order, widths, checksum constants,
//! section layout — fails loudly here and must be shipped as a
//! `FORMAT_VERSION` bump (with a migration story), never silently.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use pm_anonymize::fixtures::paper_example;
use privacy_maxent::compiled::CompiledTable;
use privacy_maxent::delta::TableDelta;
use privacy_maxent::engine::EngineConfig;
use privacy_maxent::persist::{recover, EpochWal, FORMAT_VERSION, SNAPSHOT_FILE, WAL_FILE};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/persist")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pmx-golden-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// The fixture's engine config. Pinned explicitly — the fixture bytes
/// embed it, so changing these values is an encoding change too.
fn fixture_config() -> EngineConfig {
    EngineConfig::builder().threads(1).residual_limit(f64::INFINITY).build()
}

/// The fixture's three epoch deltas over the Figure 1 table.
fn fixture_deltas() -> [TableDelta; 3] {
    [
        TableDelta::new().insert(vec![0, 0], 0, 1),
        TableDelta::new().move_record(vec![0, 0], 0, 1, 2),
        TableDelta::new().retract(vec![0, 0], 0, 2),
    ]
}

/// Writes the fixture content (snapshot + 3-epoch WAL) into `dir`.
fn materialize(dir: &Path) -> Vec<Arc<CompiledTable>> {
    let (_, table) = paper_example();
    let e0 = Arc::new(
        CompiledTable::build(table, fixture_config()).expect("baseline solves"),
    );
    e0.save(dir.join(SNAPSHOT_FILE)).expect("save succeeds");
    let mut wal = EpochWal::create(dir, e0.epoch()).expect("wal create");
    let mut chain = vec![e0];
    for delta in fixture_deltas() {
        let next = Arc::new(chain.last().unwrap().apply(&delta).expect("valid delta"));
        wal.append(next.epoch(), &delta, next.applied_delta().unwrap()).expect("append");
        chain.push(next);
    }
    chain
}

const DRIFT: &str = "\n\
    ============================================================\n\
    PERSISTED FORMAT DRIFT DETECTED\n\
    The bytes this build writes no longer match the committed\n\
    golden fixture. If the encoding change is intentional, bump\n\
    persist::FORMAT_VERSION, decide the migration story for old\n\
    artifacts, and regenerate the fixture:\n\
        cargo test --test test_persist_golden -- --ignored\n\
    Silent drift would brick every artifact already on disk.\n\
    ============================================================";

/// The encoder reproduces the committed snapshot byte for byte.
#[test]
fn golden_snapshot_bytes_are_stable() {
    assert_eq!(
        FORMAT_VERSION, 1,
        "fixture was written by format v1; regenerate it for the new version{DRIFT}"
    );
    let dir = tmpdir("snap");
    materialize(&dir);
    let fresh = fs::read(dir.join(SNAPSHOT_FILE)).expect("fresh snapshot");
    let golden = fs::read(fixture_dir().join(SNAPSHOT_FILE)).expect(
        "missing golden fixture; run `cargo test --test test_persist_golden -- --ignored`",
    );
    assert_eq!(fresh, golden, "snapshot encoding drifted{DRIFT}");
    fs::remove_dir_all(&dir).ok();
}

/// The WAL encoder reproduces the committed 3-epoch log byte for byte.
#[test]
fn golden_wal_bytes_are_stable() {
    let dir = tmpdir("wal");
    materialize(&dir);
    let fresh = fs::read(dir.join(WAL_FILE)).expect("fresh wal");
    let golden = fs::read(fixture_dir().join(WAL_FILE)).expect(
        "missing golden fixture; run `cargo test --test test_persist_golden -- --ignored`",
    );
    assert_eq!(fresh, golden, "WAL encoding drifted{DRIFT}");
    fs::remove_dir_all(&dir).ok();
}

/// The committed fixture stays *readable*: recovery replays it to epoch 3
/// with estimates bit-identical to today's freshly built chain. (Byte
/// stability says we still write v1; this says we still read it.)
#[test]
fn golden_fixture_recovers_bit_identically() {
    // Copy the fixture out first: recovery may repair a WAL in place, and
    // the source tree must stay pristine under `cargo test`.
    let dir = tmpdir("recover");
    for file in [SNAPSHOT_FILE, WAL_FILE] {
        fs::copy(fixture_dir().join(file), dir.join(file)).expect(
            "missing golden fixture; run `cargo test --test test_persist_golden -- --ignored`",
        );
    }
    let recovered = recover(&dir).expect("fixture recovers");
    assert_eq!(recovered.artifact.epoch(), 3);
    assert_eq!(recovered.replayed, 3);
    assert_eq!(recovered.truncated_bytes, 0, "committed fixture has no torn tail");

    let chain = materialize(&tmpdir("recover-ref"));
    assert_eq!(
        recovered.artifact.baseline_estimate().term_values(),
        chain.last().unwrap().baseline_estimate().term_values(),
        "fixture no longer decodes to the same estimates{DRIFT}"
    );
}

/// Regenerates the committed fixture. Run explicitly after an intentional
/// `FORMAT_VERSION` bump:
///
/// ```text
/// cargo test --test test_persist_golden -- --ignored
/// ```
#[test]
#[ignore = "writes tests/fixtures/persist; run after an intentional format bump"]
fn regenerate_golden_fixture() {
    let dir = fixture_dir();
    fs::create_dir_all(&dir).expect("fixture dir");
    materialize(&dir);
    println!(
        "regenerated {} and {} under {}",
        SNAPSHOT_FILE,
        WAL_FILE,
        dir.display()
    );
}
