//! Backpressure and admission control.
//!
//! The server promises that no tenant can degrade another's service by
//! misbehaving: a client that stops reading its socket overflows its own
//! bounded write queue and is shed with a typed `SlowConsumer` disconnect
//! — while every other tenant keeps getting answers the whole time. The
//! admission caps behave the same way: over-limit connections, tenants
//! and batches are refused with their precise typed codes instead of
//! stalling anyone, and capacity freed by a departing client is reusable.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pm_anonymize::fixtures::paper_example;
use pm_serve::client::{Client, ClientError};
use pm_serve::protocol::{
    decode_response, encode_request, ErrorCode, Request, Response, WireDeltaOp,
};
use pm_serve::registry::{Limits, Registry};
use pm_serve::server::{Backend, Server};
use privacy_maxent::compiled::CompiledTable;
use privacy_maxent::engine::EngineConfig;

/// Every admission/backpressure contract holds on both backends.
const BACKENDS: [Backend; 2] = [Backend::Reactor { workers: 4 }, Backend::Threaded];

fn config() -> EngineConfig {
    EngineConfig::builder().threads(1).residual_limit(f64::INFINITY).build()
}

fn boot(limits: Limits, backend: Backend) -> Server {
    let (_, table) = paper_example();
    let artifact = Arc::new(CompiledTable::build(table, config()).expect("baseline solves"));
    let registry = Arc::new(Registry::new(artifact, None, limits));
    Server::bind_with("127.0.0.1:0", registry, backend).expect("loopback bind")
}

/// A stalled consumer is shed with a typed disconnect, and a healthy
/// tenant on the same server never notices.
#[test]
fn stalled_client_is_shed_without_blocking_others() {
    for backend in BACKENDS {
        stalled_client_case(backend);
    }
}

fn stalled_client_case(backend: Backend) {
    let mut server = boot(
        Limits {
            // A tiny write queue so the shed trips as soon as the kernel
            // socket path jams.
            write_queue_frames: 2,
            ..Limits::default()
        },
        backend,
    );
    let addr = server.addr();

    // A healthy tenant runs its whole workload *while* the stall below is
    // in progress: the shed must never block anyone else.
    let healthy_done = Arc::new(AtomicBool::new(false));
    let healthy = {
        let done = Arc::clone(&healthy_done);
        std::thread::spawn(move || {
            let mut client = Client::connect(addr, "healthy").expect("hello");
            let started = Instant::now();
            for i in 0..200u32 {
                let p = client.query(i % 3, (i % 2) as u16).expect("healthy query");
                assert!(p.is_finite() && (0.0..=1.0).contains(&p));
            }
            client.refresh().expect("healthy refresh");
            done.store(true, Ordering::Relaxed);
            started.elapsed()
        })
    };

    // The stalled tenant: handshakes, then streams batch requests without
    // ever reading a byte back. Responses outweigh requests, so the
    // outbound path jams first: kernel buffers fill, the bounded write
    // queue overflows, and the server sheds the connection and stops
    // reading it. From this side the shed is unambiguous — writes that
    // used to drain within one batch's compute time start timing out back
    // to back.
    let mut stalled = TcpStream::connect(addr).expect("connect");
    stalled
        .write_all(&encode_request(1, &Request::Hello { tenant: "stall".into() }))
        .expect("hello");
    stalled
        .set_write_timeout(Some(Duration::from_millis(200)))
        .expect("write timeout");
    let storm = encode_request(
        2,
        &Request::Batch { queries: (0..4096).map(|i| (i % 3, (i % 2) as u16)).collect() },
    );
    // The storm has two exits, and both mean the shed already tripped:
    // either writes time out back to back (the server stopped reading the
    // socket — on a healthy connection it frees buffer space every few
    // milliseconds), or the full 4,000 frames went in, a volume several
    // times anything the kernel path can buffer, which only the post-shed
    // input drain (reading without serving) can swallow.
    let mut consecutive_timeouts = 0u32;
    'storm: for _ in 0..4_000 {
        // Partial writes must resume from the cursor: re-sending a frame
        // from byte 0 after a timeout would desync the length-prefixed
        // stream and turn this into a Malformed test.
        let mut off = 0;
        while off < storm.len() {
            match stalled.write(&storm[off..]) {
                Ok(n) => {
                    off += n;
                    consecutive_timeouts = 0;
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    consecutive_timeouts += 1;
                    if consecutive_timeouts >= 8 {
                        break 'storm;
                    }
                }
                Err(e) => panic!("storm write failed ({backend}): {e}"),
            }
        }
    }

    let healthy_wall = healthy.join().expect("healthy tenant thread");
    assert!(healthy_done.load(Ordering::Relaxed));
    assert!(
        healthy_wall < Duration::from_secs(10),
        "healthy tenant took {healthy_wall:?} with a stalled neighbour"
    );

    // Now drain the stalled socket: buffered responses, then the typed
    // SlowConsumer disconnect, then EOF. The half-close tells the server
    // no more requests are coming, so its post-shed input drain ends
    // promptly instead of waiting out a timeout.
    let _ = stalled.shutdown(std::net::Shutdown::Write);
    stalled
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut raw = Vec::new();
    stalled
        .read_to_end(&mut raw)
        .unwrap_or_else(|e| panic!("server never closed the stalled connection ({backend}): {e}"));
    let mut rest = raw.as_slice();
    let mut last = None;
    while rest.len() >= 4 {
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        assert!(rest.len() >= 4 + len, "server sent a torn frame");
        last = Some(decode_response(&rest[4..4 + len]).expect("server frames decode"));
        rest = &rest[4 + len..];
    }
    assert!(rest.is_empty(), "trailing bytes after the last frame");
    match last {
        Some((_, Response::Error { code, .. })) => {
            assert_eq!(code, ErrorCode::SlowConsumer.code(), "wrong shed code ({backend})");
        }
        other => panic!("expected a final SlowConsumer frame, got {other:?} ({backend})"),
    }

    server.shutdown();
}

/// Over-cap connections are refused with `TooManyConnections`, and the
/// slot frees when an admitted connection departs.
#[test]
fn connection_cap_sheds_typed_and_recovers() {
    for backend in BACKENDS {
        connection_cap_case(backend);
    }
}

fn connection_cap_case(backend: Backend) {
    let mut server = boot(Limits { max_connections: 2, ..Limits::default() }, backend);
    let addr = server.addr();

    let c1 = Client::connect(addr, "a").expect("first connection admitted");
    let _c2 = Client::connect(addr, "b").expect("second connection admitted");
    match Client::connect(addr, "c") {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::TooManyConnections.code());
        }
        other => panic!("expected a typed reject, got {other:?}"),
    }

    // Departure frees the slot (the server reaps asynchronously, so poll).
    drop(c1);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match Client::connect(addr, "c") {
            Ok(_) => break,
            Err(ClientError::Server { code, .. })
                if code == ErrorCode::TooManyConnections.code() =>
            {
                assert!(Instant::now() < deadline, "freed slot never became admittable");
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(other) => panic!("unexpected error while polling: {other:?}"),
        }
    }

    server.shutdown();
}

/// Over-cap tenants are refused with `TooManyTenants` — via hello and via
/// fork — without disturbing the resident tenant.
#[test]
fn tenant_cap_sheds_typed() {
    for backend in BACKENDS {
        tenant_cap_case(backend);
    }
}

fn tenant_cap_case(backend: Backend) {
    let mut server = boot(Limits { max_tenants: 1, ..Limits::default() }, backend);
    let addr = server.addr();

    let mut resident = Client::connect(addr, "only").expect("first tenant admitted");

    // A second tenant via hello: typed reject.
    match Client::connect(addr, "intruder") {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::TooManyTenants.code());
        }
        other => panic!("expected a typed reject, got {other:?}"),
    }

    // A second tenant via fork: same cap, same code.
    match resident.fork("offspring") {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::TooManyTenants.code());
        }
        other => panic!("expected a typed reject, got {other:?}"),
    }

    // Re-binding the *existing* tenant is not a new tenant: still admitted.
    let mut again = Client::connect(addr, "only").expect("rebind admitted");
    let p = again.query(0, 0).expect("resident tenant still serves");
    assert!(p.is_finite());

    server.shutdown();
}

/// Oversized batches are refused with `OversizedBatch` — an application
/// error, not a protocol one: the frame decoded cleanly, so the *same*
/// connection serves a compliant retry.
#[test]
fn batch_cap_sheds_typed() {
    for backend in BACKENDS {
        let mut server = boot(Limits { max_batch: 8, ..Limits::default() }, backend);
        let addr = server.addr();

        let mut client = Client::connect(addr, "t").expect("hello");
        match client.batch((0..9).map(|i| (i % 3, 0u16)).collect()) {
            Err(ClientError::Server { code, .. }) => {
                assert_eq!(code, ErrorCode::OversizedBatch.code());
            }
            other => panic!("expected a typed reject, got {other:?}"),
        }

        let ps =
            client.batch((0..8).map(|i| (i % 3, 0u16)).collect()).expect("compliant retry");
        assert_eq!(ps.len(), 8);

        server.shutdown();
    }
}

/// Graceful drain on the reactor backend: live connections get a final
/// typed `ShuttingDown` frame, then a clean EOF — never a silent reset.
/// (The threaded backend just closes; the drain frame is the readiness
/// loop's improvement, possible because it owns every socket.)
#[test]
fn graceful_shutdown_sends_shutting_down_then_eof() {
    let mut server = boot(Limits::default(), Backend::Reactor { workers: 2 });
    let addr = server.addr();

    // An idle mid-handshake connection and a bound tenant both drain. The
    // hello answer is read back *before* shutdown starts: a drain drops
    // in-flight work by design, so the ordering contract under test is
    // "answered requests stay answered, then the typed drain frame" — not
    // a race between the handshake and the shutdown call.
    let mut bound = TcpStream::connect(addr).expect("connect");
    bound
        .write_all(&encode_request(1, &Request::Hello { tenant: "drainee".into() }))
        .expect("hello");
    bound.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    let mut header = [0u8; 4];
    bound.read_exact(&mut header).expect("hello response header");
    let mut body = vec![0u8; u32::from_le_bytes(header) as usize];
    bound.read_exact(&mut body).expect("hello response body");
    let (_, hello) = decode_response(&body).expect("hello decodes");
    assert!(matches!(hello, Response::Hello(_)), "expected a hello answer, got {hello:?}");
    let idle = TcpStream::connect(addr).expect("connect");
    // `connect` returns once the kernel completes the handshake, which can
    // be before the server *accepts* — and the drain only covers accepted
    // connections. Wait until both are registered.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.connection_count() < 2 {
        assert!(Instant::now() < deadline, "server never accepted both connections");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Shutdown blocks until the drain completes, so the sockets must be
    // read concurrently.
    let drained = std::thread::spawn(move || {
        let mut frames = Vec::new();
        for mut stream in [bound, idle] {
            stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
            let mut raw = Vec::new();
            stream.read_to_end(&mut raw).expect("clean EOF after the drain frame");
            let mut rest = raw.as_slice();
            let mut conn_frames = Vec::new();
            while rest.len() >= 4 {
                let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
                conn_frames.push(decode_response(&rest[4..4 + len]).expect("frames decode"));
                rest = &rest[4 + len..];
            }
            assert!(rest.is_empty(), "torn frame in the drain");
            frames.push(conn_frames);
        }
        frames
    });
    server.shutdown();
    let frames = drained.join().expect("drain reader ok");

    // Both connections end with the typed drain frame (for the bound one
    // it follows the already-consumed hello answer).
    for conn_frames in &frames {
        match conn_frames.last() {
            Some((_, Response::Error { code, .. })) => {
                assert_eq!(*code, ErrorCode::ShuttingDown.code(), "wrong drain code");
            }
            other => panic!("expected a final ShuttingDown frame, got {other:?}"),
        }
    }
}

/// Regression: `open_tenant` must not reach for the chain tip while it
/// holds the tenants write lock — `apply_delta` takes the chain mutex and
/// then reads the tenants map for its prune floor, so the old order could
/// AB-BA deadlock a new tenant's hello against a racing table delta (and,
/// the tenants lock being writer-preferring, freeze every other
/// connection's lookup behind it).
#[test]
fn new_tenant_hello_races_table_deltas_without_deadlock() {
    let (_, table) = paper_example();
    let artifact = Arc::new(CompiledTable::build(table, config()).expect("baseline solves"));
    let registry = Arc::new(Registry::new(artifact, None, Limits::default()));

    // An op that stays valid at every epoch: inserting an existing
    // record's tuple into an existing bucket always applies.
    let (qi, sa) = {
        let latest = registry.latest();
        let table = latest.table();
        let bucket = table.bucket(0);
        let q = bucket.qi_counts()[0].0;
        (table.interner().tuple(q).to_vec(), bucket.sa_counts()[0].0)
    };

    const OPENERS: usize = 4;
    const ROUNDS: usize = 200;
    let done = Arc::new(AtomicUsize::new(0));
    let mut racers = Vec::new();
    for t in 0..OPENERS {
        let registry = Arc::clone(&registry);
        let done = Arc::clone(&done);
        racers.push(std::thread::spawn(move || {
            for i in 0..ROUNDS {
                registry.open_tenant(&format!("race-{t}-{i}")).expect("tenant admitted");
            }
            done.fetch_add(1, Ordering::SeqCst);
        }));
    }
    {
        let registry = Arc::clone(&registry);
        let done = Arc::clone(&done);
        racers.push(std::thread::spawn(move || {
            for _ in 0..ROUNDS {
                let op = WireDeltaOp::Insert { qi: qi.clone(), sa, bucket: 0 };
                registry.apply_delta(vec![op]).expect("delta applies");
            }
            done.fetch_add(1, Ordering::SeqCst);
        }));
    }

    // Bounded wait: a deadlock must fail the test, not hang the suite.
    let deadline = Instant::now() + Duration::from_secs(60);
    while done.load(Ordering::SeqCst) < OPENERS + 1 {
        assert!(Instant::now() < deadline, "hello/table-delta race deadlocked");
        std::thread::sleep(Duration::from_millis(10));
    }
    for racer in racers {
        racer.join().expect("racer ok");
    }
}
