//! Backpressure and admission control.
//!
//! The server promises that no tenant can degrade another's service by
//! misbehaving: a client that stops reading its socket overflows its own
//! bounded write queue and is shed with a typed `SlowConsumer` disconnect
//! — while every other tenant keeps getting answers the whole time. The
//! admission caps behave the same way: over-limit connections, tenants
//! and batches are refused with their precise typed codes instead of
//! stalling anyone, and capacity freed by a departing client is reusable.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pm_anonymize::fixtures::paper_example;
use pm_serve::client::{Client, ClientError};
use pm_serve::protocol::{
    decode_response, encode_request, ErrorCode, Request, Response, WireDeltaOp,
};
use pm_serve::registry::{Limits, Registry};
use pm_serve::server::Server;
use privacy_maxent::compiled::CompiledTable;
use privacy_maxent::engine::EngineConfig;

fn config() -> EngineConfig {
    EngineConfig::builder().threads(1).residual_limit(f64::INFINITY).build()
}

fn boot(limits: Limits) -> Server {
    let (_, table) = paper_example();
    let artifact = Arc::new(CompiledTable::build(table, config()).expect("baseline solves"));
    let registry = Arc::new(Registry::new(artifact, None, limits));
    Server::bind("127.0.0.1:0", registry).expect("loopback bind")
}

/// A stalled consumer is shed with a typed disconnect, and a healthy
/// tenant on the same server never notices.
#[test]
fn stalled_client_is_shed_without_blocking_others() {
    let mut server = boot(Limits {
        // A tiny write queue so the stall trips fast; big batches so each
        // response frame is heavy enough to wedge the kernel buffers.
        write_queue_frames: 2,
        ..Limits::default()
    });
    let addr = server.addr();

    // The stalled tenant: handshakes, then floods batch requests without
    // ever reading a byte of its responses.
    let mut stalled = TcpStream::connect(addr).expect("connect");
    stalled
        .write_all(&encode_request(1, &Request::Hello { tenant: "stall".into() }))
        .expect("hello");
    stalled
        .set_write_timeout(Some(Duration::from_millis(200)))
        .expect("write timeout");
    let storm = encode_request(
        2,
        &Request::Batch { queries: (0..60_000).map(|i| (i % 3, (i % 2) as u16)).collect() },
    );
    let mut sent = 0usize;
    for _ in 0..64 {
        // Once the server sheds us it stops reading; our writes then jam
        // and time out — that is the expected end state, not a failure.
        match stalled.write_all(&storm) {
            Ok(()) => sent += 1,
            Err(_) => break,
        }
    }
    assert!(sent >= 2, "the storm never left the building");

    // Meanwhile, a healthy tenant gets full service with the stall active.
    let healthy_done = Arc::new(AtomicBool::new(false));
    let healthy = {
        let done = Arc::clone(&healthy_done);
        std::thread::spawn(move || {
            let mut client = Client::connect(addr, "healthy").expect("hello");
            let started = Instant::now();
            for i in 0..200u32 {
                let p = client.query(i % 3, (i % 2) as u16).expect("healthy query");
                assert!(p.is_finite() && (0.0..=1.0).contains(&p));
            }
            client.refresh().expect("healthy refresh");
            done.store(true, Ordering::Relaxed);
            started.elapsed()
        })
    };
    let healthy_wall = healthy.join().expect("healthy tenant thread");
    assert!(healthy_done.load(Ordering::Relaxed));
    assert!(
        healthy_wall < Duration::from_secs(10),
        "healthy tenant took {healthy_wall:?} with a stalled neighbour"
    );

    // Now drain the stalled socket: buffered responses, then the typed
    // SlowConsumer disconnect, then EOF. (Reading unblocks the server's
    // writer so the shed can complete.)
    stalled
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut raw = Vec::new();
    stalled.read_to_end(&mut raw).expect("server closes the stalled connection");
    let mut rest = raw.as_slice();
    let mut last = None;
    while rest.len() >= 4 {
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        assert!(rest.len() >= 4 + len, "server sent a torn frame");
        last = Some(decode_response(&rest[4..4 + len]).expect("server frames decode"));
        rest = &rest[4 + len..];
    }
    assert!(rest.is_empty(), "trailing bytes after the last frame");
    match last {
        Some((_, Response::Error { code, .. })) => {
            assert_eq!(code, ErrorCode::SlowConsumer.code(), "wrong shed code");
        }
        other => panic!("expected a final SlowConsumer frame, got {other:?}"),
    }

    server.shutdown();
}

/// Over-cap connections are refused with `TooManyConnections`, and the
/// slot frees when an admitted connection departs.
#[test]
fn connection_cap_sheds_typed_and_recovers() {
    let mut server = boot(Limits { max_connections: 2, ..Limits::default() });
    let addr = server.addr();

    let c1 = Client::connect(addr, "a").expect("first connection admitted");
    let _c2 = Client::connect(addr, "b").expect("second connection admitted");
    match Client::connect(addr, "c") {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::TooManyConnections.code());
        }
        other => panic!("expected a typed reject, got {other:?}"),
    }

    // Departure frees the slot (the server reaps asynchronously, so poll).
    drop(c1);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match Client::connect(addr, "c") {
            Ok(_) => break,
            Err(ClientError::Server { code, .. })
                if code == ErrorCode::TooManyConnections.code() =>
            {
                assert!(Instant::now() < deadline, "freed slot never became admittable");
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(other) => panic!("unexpected error while polling: {other:?}"),
        }
    }

    server.shutdown();
}

/// Over-cap tenants are refused with `TooManyTenants` — via hello and via
/// fork — without disturbing the resident tenant.
#[test]
fn tenant_cap_sheds_typed() {
    let mut server = boot(Limits { max_tenants: 1, ..Limits::default() });
    let addr = server.addr();

    let mut resident = Client::connect(addr, "only").expect("first tenant admitted");

    // A second tenant via hello: typed reject.
    match Client::connect(addr, "intruder") {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::TooManyTenants.code());
        }
        other => panic!("expected a typed reject, got {other:?}"),
    }

    // A second tenant via fork: same cap, same code.
    match resident.fork("offspring") {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::TooManyTenants.code());
        }
        other => panic!("expected a typed reject, got {other:?}"),
    }

    // Re-binding the *existing* tenant is not a new tenant: still admitted.
    let mut again = Client::connect(addr, "only").expect("rebind admitted");
    let p = again.query(0, 0).expect("resident tenant still serves");
    assert!(p.is_finite());

    server.shutdown();
}

/// Oversized batches are refused with `OversizedBatch` — an application
/// error, not a protocol one: the frame decoded cleanly, so the *same*
/// connection serves a compliant retry.
#[test]
fn batch_cap_sheds_typed() {
    let mut server = boot(Limits { max_batch: 8, ..Limits::default() });
    let addr = server.addr();

    let mut client = Client::connect(addr, "t").expect("hello");
    match client.batch((0..9).map(|i| (i % 3, 0u16)).collect()) {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::OversizedBatch.code());
        }
        other => panic!("expected a typed reject, got {other:?}"),
    }

    let ps = client.batch((0..8).map(|i| (i % 3, 0u16)).collect()).expect("compliant retry");
    assert_eq!(ps.len(), 8);

    server.shutdown();
}

/// Regression: `open_tenant` must not reach for the chain tip while it
/// holds the tenants write lock — `apply_delta` takes the chain mutex and
/// then reads the tenants map for its prune floor, so the old order could
/// AB-BA deadlock a new tenant's hello against a racing table delta (and,
/// the tenants lock being writer-preferring, freeze every other
/// connection's lookup behind it).
#[test]
fn new_tenant_hello_races_table_deltas_without_deadlock() {
    let (_, table) = paper_example();
    let artifact = Arc::new(CompiledTable::build(table, config()).expect("baseline solves"));
    let registry = Arc::new(Registry::new(artifact, None, Limits::default()));

    // An op that stays valid at every epoch: inserting an existing
    // record's tuple into an existing bucket always applies.
    let (qi, sa) = {
        let latest = registry.latest();
        let table = latest.table();
        let bucket = table.bucket(0);
        let q = bucket.qi_counts()[0].0;
        (table.interner().tuple(q).to_vec(), bucket.sa_counts()[0].0)
    };

    const OPENERS: usize = 4;
    const ROUNDS: usize = 200;
    let done = Arc::new(AtomicUsize::new(0));
    let mut racers = Vec::new();
    for t in 0..OPENERS {
        let registry = Arc::clone(&registry);
        let done = Arc::clone(&done);
        racers.push(std::thread::spawn(move || {
            for i in 0..ROUNDS {
                registry.open_tenant(&format!("race-{t}-{i}")).expect("tenant admitted");
            }
            done.fetch_add(1, Ordering::SeqCst);
        }));
    }
    {
        let registry = Arc::clone(&registry);
        let done = Arc::clone(&done);
        racers.push(std::thread::spawn(move || {
            for _ in 0..ROUNDS {
                let op = WireDeltaOp::Insert { qi: qi.clone(), sa, bucket: 0 };
                registry.apply_delta(vec![op]).expect("delta applies");
            }
            done.fetch_add(1, Ordering::SeqCst);
        }));
    }

    // Bounded wait: a deadlock must fail the test, not hang the suite.
    let deadline = Instant::now() + Duration::from_secs(60);
    while done.load(Ordering::SeqCst) < OPENERS + 1 {
        assert!(Instant::now() < deadline, "hello/table-delta race deadlocked");
        std::thread::sleep(Duration::from_millis(10));
    }
    for racer in racers {
        racer.join().expect("racer ok");
    }
}
