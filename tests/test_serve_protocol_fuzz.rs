//! Serve-protocol corruption fuzzing.
//!
//! Whatever bytes arrive on the socket, the server must fail *softly*:
//! truncations of every valid frame at every byte offset, single-byte
//! flips, wholesale garbage, and hostile length prefixes must surface as
//! typed protocol error frames (or a clean close) — never a panic, never
//! an attacker-sized allocation, and never a malformed byte in the
//! server's own output. After every abuse the same server must keep
//! serving healthy clients correct answers, which is the observable proof
//! that no connection thread died screaming. (Mirrors
//! `test_persist_fuzz.rs`, one layer up the stack.)

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use pm_anonymize::fixtures::paper_example;
use pm_serve::client::Client;
use pm_serve::protocol::{
    decode_response, encode_request, ErrorCode, Request, Response, WireKnowledge,
};
use pm_serve::registry::{Limits, Registry};
use pm_serve::server::{Backend, Server};
use privacy_maxent::compiled::CompiledTable;
use privacy_maxent::engine::EngineConfig;
use proptest::prelude::*;

fn config() -> EngineConfig {
    EngineConfig::builder().threads(1).residual_limit(f64::INFINITY).build()
}

/// One shared server per backend over the Figure 1 table, reused by every
/// case. Neither is ever shut down — the whole point is that no amount of
/// abuse kills them.
fn boot(cell: &'static OnceLock<Server>, backend: Backend) -> SocketAddr {
    cell.get_or_init(|| {
        let (_, table) = paper_example();
        let artifact = Arc::new(CompiledTable::build(table, config()).expect("baseline solves"));
        let registry = Arc::new(Registry::new(artifact, None, Limits::default()));
        Server::bind_with("127.0.0.1:0", registry, backend).expect("loopback bind")
    })
    .addr()
}

/// Both backends speak the identical protocol contract; every case runs
/// against each.
fn both_backends() -> [SocketAddr; 2] {
    static REACTOR: OnceLock<Server> = OnceLock::new();
    static THREADED: OnceLock<Server> = OnceLock::new();
    [boot(&REACTOR, Backend::default()), boot(&THREADED, Backend::Threaded)]
}

/// The valid frames the mutations start from — one per opcode family.
fn seed_frames() -> Vec<Vec<u8>> {
    vec![
        encode_request(1, &Request::Hello { tenant: "fuzz".into() }),
        encode_request(2, &Request::Query { q: 0, s: 0 }),
        encode_request(3, &Request::Batch { queries: vec![(0, 0), (1, 1)] }),
        encode_request(
            4,
            &Request::AddKnowledge {
                items: vec![WireKnowledge {
                    antecedent: vec![(0, 1)],
                    sa: 0,
                    probability: 0.5,
                }],
            },
        ),
        encode_request(5, &Request::Remove { handle: 7 }),
        encode_request(6, &Request::Refresh),
        encode_request(7, &Request::Ping),
    ]
}

/// Sends raw bytes, half-closes the write side, then drains everything the
/// server says until it closes. Panics (failing the test) if any server
/// output byte is not a well-formed, decodable response frame — under fuzz
/// the *server's* output must stay pristine even when ours is garbage.
fn abuse(addr: SocketAddr, bytes: &[u8]) -> Vec<(u64, Response)> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    // A fatally-shed connection may already be closed before we finish
    // writing — a reset here is the server declining more abuse, not a bug.
    let _ = stream.write_all(bytes);
    let _ = stream.shutdown(Shutdown::Write);
    let mut raw = Vec::new();
    if let Err(e) = stream.read_to_end(&mut raw) {
        match e.kind() {
            std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe => return Vec::new(),
            _ => panic!("unexpected read error: {e}"),
        }
    }
    let mut frames = Vec::new();
    let mut rest = raw.as_slice();
    while !rest.is_empty() {
        assert!(rest.len() >= 4, "server sent a torn length prefix");
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        assert!(rest.len() >= 4 + len, "server sent a torn frame body");
        frames.push(
            decode_response(&rest[4..4 + len]).expect("server frames always decode"),
        );
        rest = &rest[4 + len..];
    }
    frames
}

/// A healthy client on the same server gets correct service — the
/// liveness oracle run after every batch of abuse.
fn assert_still_serving(addr: SocketAddr) {
    let mut client = Client::connect(addr, "healthy").expect("hello succeeds");
    let p = client.query(0, 0).expect("query succeeds");
    assert!(p.is_finite() && (0.0..=1.0).contains(&p), "p = {p}");
    client.ping().expect("pong");
}

/// Every valid frame truncated at every byte offset: the server either
/// stays silent (mid-frame EOF is a clean close) or answers with typed,
/// well-formed frames. Exhaustive, not sampled.
#[test]
fn truncation_at_every_offset_never_panics() {
    for addr in both_backends() {
        for frame in seed_frames() {
            for cut in 0..frame.len() {
                let frames = abuse(addr, &frame[..cut]);
                for (_, resp) in frames {
                    if let Response::Error { code, .. } = resp {
                        assert!(ErrorCode::from_code(code).is_some(), "untyped code {code}");
                    }
                }
            }
        }
        assert_still_serving(addr);
    }
}

/// Every byte of every valid frame flipped (all 8 bit positions, cycled by
/// offset so each byte sees a different bit each run of the outer loop):
/// the stream may now mean anything, so the only contract is the hard one —
/// typed frames out, no panic, connection lifecycle intact. Exhaustive
/// over offsets.
#[test]
fn single_byte_flips_never_panic() {
    for addr in both_backends() {
        for frame in seed_frames() {
            for offset in 0..frame.len() {
                for bit in [offset % 8, (offset + 5) % 8] {
                    let mut mutated = frame.clone();
                    mutated[offset] ^= 1 << bit;
                    let frames = abuse(addr, &mutated);
                    for (_, resp) in frames {
                        if let Response::Error { code, .. } = resp {
                            assert!(
                                ErrorCode::from_code(code).is_some(),
                                "flip at byte {offset} bit {bit}: untyped code {code}"
                            );
                        }
                    }
                }
            }
        }
        assert_still_serving(addr);
    }
}

/// Hostile length prefixes: a length over the frame cap — up to and
/// including `u32::MAX` — must be refused with a typed `FrameTooLarge`
/// *before* any allocation is sized from it, then the connection closes.
#[test]
fn oversized_length_prefixes_are_shed_typed() {
    for addr in both_backends() {
        let cap = Limits::default().max_frame_bytes as u32;
        for len in [cap + 1, cap * 2, u32::MAX / 2, u32::MAX] {
            let mut bytes = len.to_le_bytes().to_vec();
            bytes.extend_from_slice(&[0xAB; 64]); // a little fake body
            let frames = abuse(addr, &bytes);
            assert_eq!(frames.len(), 1, "exactly one shed frame for len {len}");
            match &frames[0].1 {
                Response::Error { code, .. } => {
                    assert_eq!(*code, ErrorCode::FrameTooLarge.code(), "len {len}");
                }
                other => panic!("len {len}: expected FrameTooLarge, got {other:?}"),
            }
        }
        assert_still_serving(addr);
    }
}

/// The targeted non-random protocol violations, each with its precise
/// typed code.
#[test]
fn targeted_violations_get_precise_codes() {
    for addr in both_backends() {
        // A query before any hello: HandshakeRequired.
        let frames = abuse(addr, &encode_request(1, &Request::Query { q: 0, s: 0 }));
        assert!(matches!(
            &frames[0].1,
            Response::Error { code, .. } if *code == ErrorCode::HandshakeRequired.code()
        ));

        // A second hello on a bound connection: DuplicateHello.
        let mut double = encode_request(1, &Request::Hello { tenant: "dup".into() });
        double.extend(encode_request(2, &Request::Hello { tenant: "dup".into() }));
        let frames = abuse(addr, &double);
        assert!(matches!(&frames[0].1, Response::Hello(_)));
        assert!(matches!(
            &frames[1].1,
            Response::Error { code, .. } if *code == ErrorCode::DuplicateHello.code()
        ));

        // An unknown opcode byte: UnknownOpcode (magic + version are fine).
        let mut frame = encode_request(1, &Request::Ping);
        frame[4] = 0xEE; // the opcode byte leads the body, right after the prefix
        let frames = abuse(addr, &frame);
        assert!(matches!(
            &frames[0].1,
            Response::Error { code, .. } if *code == ErrorCode::UnknownOpcode.code()
        ));

        assert_still_serving(addr);
    }
}

/// A frame dribbled to the reactor one byte at a time — every length
/// prefix and body byte arrives in its own readiness event, with a pause
/// between bytes so the event loop actually sees separate wakeups. The
/// response must be identical to a one-shot send, on both backends.
#[test]
fn partial_frames_span_readiness_events() {
    for addr in both_backends() {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
        let hello = encode_request(9, &Request::Hello { tenant: "dribble".into() });
        let ping = encode_request(10, &Request::Ping);
        for frame in [&hello, &ping] {
            for byte in frame.iter() {
                stream.write_all(std::slice::from_ref(byte)).expect("write one byte");
                stream.flush().expect("flush");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let _ = stream.shutdown(Shutdown::Write);
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).expect("read responses");
        let mut rest = raw.as_slice();
        let mut frames = Vec::new();
        while !rest.is_empty() {
            let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
            frames.push(decode_response(&rest[4..4 + len]).expect("decodes"));
            rest = &rest[4 + len..];
        }
        assert_eq!(frames.len(), 2, "one answer per dribbled frame");
        assert!(matches!(&frames[0], (9, Response::Hello(_))));
        assert!(matches!(&frames[1], (10, Response::Pong)));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Wholesale garbage streams — random bytes, random length — framed
    /// however the first four bytes happen to parse. The server sheds them
    /// with typed frames or a silent close, and never panics.
    #[test]
    fn garbage_streams_never_panic(len in 1usize..2048, seed in 0u64..u64::MAX) {
        let mut state = seed | 1;
        let garbage: Vec<u8> = (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state as u8
            })
            .collect();
        for addr in both_backends() {
            let frames = abuse(addr, &garbage);
            for (_, resp) in frames {
                if let Response::Error { code, .. } = resp {
                    prop_assert!(ErrorCode::from_code(code).is_some(), "untyped code {}", code);
                }
            }
        }
    }

    /// Garbage wrapped in an *honest* length prefix — the decoder sees the
    /// full body and must reject it typed (Malformed / BadMagic /
    /// BadVersion / UnknownOpcode), still without panicking.
    #[test]
    fn framed_garbage_is_rejected_typed(len in 1usize..512, seed in 0u64..u64::MAX) {
        let mut state = seed | 1;
        let body: Vec<u8> = (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state as u8
            })
            .collect();
        let mut bytes = (len as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&body);
        for addr in both_backends() {
            let frames = abuse(addr, &bytes);
            prop_assert!(!frames.is_empty(), "a complete frame always gets an answer");
            match &frames[0].1 {
                Response::Error { code, .. } => {
                    let code = ErrorCode::from_code(*code);
                    prop_assert!(code.is_some(), "untyped code");
                    prop_assert!(code.unwrap().is_fatal(), "garbage must be fatal");
                }
                other => prop_assert!(false, "expected a typed error, got {:?}", other),
            }
        }
    }
}
