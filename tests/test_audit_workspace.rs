//! Tier-1 static-analysis gate: the whole workspace must audit clean, the
//! committed known-bad fixtures must each produce their exact expected
//! diagnostics, and seeded mutations of *real* sources (a lock-order
//! violation in `registry.rs`, a wall-clock read in `partition.rs`) must
//! be caught at the correct `file:line` — proving the rules still detect
//! the violation classes they were written against, not just the shapes
//! in their unit tests.

use std::path::{Path, PathBuf};

use pm_audit::{audit_manifest, audit_source, audit_workspace, Severity, SourceFile};

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn fixture(name: &str) -> String {
    let path: PathBuf =
        [env!("CARGO_MANIFEST_DIR"), "tests", "fixtures", "audit", name].iter().collect();
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

/// Audits fixture `name` as if it lived at `as_path` in the workspace.
fn audit_fixture(name: &str, as_path: &str) -> (Vec<pm_audit::Diagnostic>, usize) {
    audit_source(&SourceFile::parse(as_path, &fixture(name)))
}

// ---------------------------------------------------------------------------
// The gate: the real workspace is clean.
// ---------------------------------------------------------------------------

#[test]
fn workspace_audits_clean() {
    let report = audit_workspace(workspace_root()).expect("workspace scan");
    assert!(
        report.files_scanned > 100,
        "scan looks truncated: only {} files",
        report.files_scanned
    );
    let rendered = report.render_human();
    assert_eq!(report.errors(), 0, "unsuppressed audit errors:\n{rendered}");
    assert_eq!(report.warnings(), 0, "audit warnings (stale pragmas?):\n{rendered}");
    assert!(report.is_clean(true));
    assert!(
        report.suppressed > 0,
        "the workspace carries justified suppressions; zero means pragmas stopped parsing"
    );
}

#[test]
fn workspace_report_is_deterministic_and_machine_readable() {
    let a = audit_workspace(workspace_root()).expect("scan");
    let b = audit_workspace(workspace_root()).expect("scan");
    assert_eq!(a.render_json(), b.render_json(), "two scans must render identically");
    let json = a.render_json();
    let summary = json.lines().last().expect("summary line");
    assert!(summary.contains("\"summary\":true"));
    assert!(summary.contains("\"errors\":0"));
}

// ---------------------------------------------------------------------------
// Committed known-bad fixtures: exact file / line / rule.
// ---------------------------------------------------------------------------

#[test]
fn lock_order_fixture_is_caught() {
    let (d, _) = audit_fixture("lock_order_bad.rs", "crates/serve/src/registry.rs");
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(
        (d[0].rule.as_str(), d[0].path.as_str(), d[0].line, d[0].severity),
        ("lock-order", "crates/serve/src/registry.rs", 6, Severity::Error)
    );
    assert!(d[0].message.contains("chain"), "{}", d[0].message);
}

#[test]
fn determinism_fixture_is_caught() {
    let (d, _) = audit_fixture("determinism_bad.rs", "crates/solver/src/fixture.rs");
    let got: Vec<(&str, u32)> = d.iter().map(|d| (d.rule.as_str(), d.line)).collect();
    assert_eq!(
        got,
        vec![("determinism", 4), ("determinism", 5), ("determinism", 6)],
        "{d:?}"
    );
    assert!(d[2].message.contains("counts.iter()"), "{}", d[2].message);
}

#[test]
fn panic_policy_fixture_is_caught_and_test_mod_exempt() {
    let (d, _) = audit_fixture("panic_policy_bad.rs", "crates/serve/src/conn.rs");
    let got: Vec<(&str, u32)> = d.iter().map(|d| (d.rule.as_str(), d.line)).collect();
    assert_eq!(
        got,
        vec![
            ("panic-policy", 4),  // buf[0]
            ("panic-policy", 5),  // .unwrap()
            ("panic-policy", 6),  // .expect()
            ("panic-policy", 7),  // panic!
        ],
        "{d:?}"
    );
    // The unwrap and indexing inside #[cfg(test)] (lines 10..) must NOT
    // appear — the exemption is what makes the rule adoptable.
    assert!(d.iter().all(|d| d.line < 10), "{d:?}");
}

#[test]
fn error_code_fixture_is_caught() {
    let (d, _) = audit_fixture("error_code_bad.rs", "crates/serve/src/protocol.rs");
    let got: Vec<(&str, u32)> = d.iter().map(|d| (d.rule.as_str(), d.line)).collect();
    assert_eq!(
        got,
        vec![("error-code-range", 7), ("error-code-range", 9)],
        "{d:?}"
    );
    assert!(d[0].message.contains("reuses discriminant 1"));
    assert!(d[1].message.contains("application range"));
}

#[test]
fn shim_bypass_fixture_is_caught() {
    let d = audit_manifest("crates/bad/Cargo.toml", &fixture("shim_bypass_Cargo.toml"));
    let got: Vec<(&str, u32)> = d.iter().map(|d| (d.rule.as_str(), d.line)).collect();
    assert_eq!(got, vec![("shim-hygiene", 7), ("shim-hygiene", 8)], "{d:?}");
}

#[test]
fn suppression_round_trip() {
    let (d, suppressed) = audit_fixture("suppressed_ok.rs", "crates/solver/src/fixture.rs");
    assert!(d.is_empty(), "valid pragmas must silence the findings: {d:?}");
    assert_eq!(suppressed, 2, "both the trailing and the standalone pragma must bind");
}

#[test]
fn pragma_hygiene_fixture() {
    let (d, suppressed) = audit_fixture("pragma_no_reason.rs", "crates/solver/src/fixture.rs");
    assert_eq!(suppressed, 0, "none of these pragmas may suppress anything");
    let got: Vec<(&str, u32, Severity)> =
        d.iter().map(|d| (d.rule.as_str(), d.line, d.severity)).collect();
    assert!(
        got.contains(&("determinism", 4, Severity::Error)),
        "reasonless pragma must not hide the finding: {d:?}"
    );
    assert!(got.contains(&("pragma", 4, Severity::Error)), "missing reason: {d:?}");
    assert!(got.contains(&("pragma", 5, Severity::Error)), "unknown rule id: {d:?}");
    assert!(got.contains(&("pragma", 6, Severity::Warning)), "stale pragma: {d:?}");
    assert_eq!(d.len(), 4, "{d:?}");
}

// ---------------------------------------------------------------------------
// Mutation tests: seed a violation into the REAL sources; the rule must
// catch it at exactly the seeded line.
// ---------------------------------------------------------------------------

#[test]
fn seeded_lock_order_violation_in_real_registry_is_caught() {
    let src = std::fs::read_to_string(workspace_root().join("crates/serve/src/registry.rs"))
        .expect("read registry.rs");
    let base_lines = src.lines().count() as u32;
    let mutated = format!(
        "{src}impl Registry {{\n    fn seeded(&self) {{\n        let guard = self.tenants.read();\n        let latest = self.latest();\n    }}\n}}\n"
    );
    let (clean, _) = audit_source(&SourceFile::parse("crates/serve/src/registry.rs", &src));
    assert!(clean.is_empty(), "today's registry must be clean: {clean:?}");
    let (d, _) = audit_source(&SourceFile::parse("crates/serve/src/registry.rs", &mutated));
    let hits: Vec<&pm_audit::Diagnostic> =
        d.iter().filter(|d| d.rule == "lock-order").collect();
    assert_eq!(hits.len(), 1, "{d:?}");
    assert_eq!(hits[0].line, base_lines + 4, "anchored to the seeded `self.latest()` line");
}

#[test]
fn seeded_hash_iteration_in_real_batcher_is_caught() {
    // The batch planner's output order IS the merge order (bit-identity
    // anchor), so the determinism rule must cover it: seed a plan that
    // iterates a hash-ordered set into the batch list.
    let src = std::fs::read_to_string(workspace_root().join("crates/core/src/batch.rs"))
        .expect("read batch.rs");
    let base_lines = src.lines().count() as u32;
    // Named so it cannot collide with real bindings: the rule's hash-name
    // pass is file-global.
    let mutated = format!(
        "{src}fn seeded_plan(seeded_set: HashSet<usize>) -> Vec<usize> {{\n    let mut order = Vec::new();\n    for ci in seeded_set.iter() {{\n        order.push(*ci);\n    }}\n    order\n}}\n"
    );
    let (clean, _) = audit_source(&SourceFile::parse("crates/core/src/batch.rs", &src));
    assert!(clean.is_empty(), "today's batch.rs must be clean: {clean:?}");
    let (d, _) = audit_source(&SourceFile::parse("crates/core/src/batch.rs", &mutated));
    let hits: Vec<&pm_audit::Diagnostic> =
        d.iter().filter(|d| d.rule == "determinism").collect();
    assert_eq!(hits.len(), 1, "{d:?}");
    assert_eq!(hits[0].line, base_lines + 3, "anchored to the seeded hash iteration line");
    assert!(hits[0].message.contains("hash-ordered"), "{}", hits[0].message);
}

#[test]
fn seeded_wall_clock_read_in_real_overlay_is_caught() {
    // The flat overlay joined the determinism scope with this refactor;
    // prove the rule actually bites there, not just in its unit tests.
    let src = std::fs::read_to_string(workspace_root().join("crates/core/src/overlay.rs"))
        .expect("read overlay.rs");
    let base_lines = src.lines().count() as u32;
    let mutated =
        format!("{src}fn seeded_stamp() {{\n    let t = std::time::Instant::now();\n}}\n");
    let (clean, _) = audit_source(&SourceFile::parse("crates/core/src/overlay.rs", &src));
    assert!(clean.is_empty(), "today's overlay.rs must be clean: {clean:?}");
    let (d, _) = audit_source(&SourceFile::parse("crates/core/src/overlay.rs", &mutated));
    let hits: Vec<&pm_audit::Diagnostic> =
        d.iter().filter(|d| d.rule == "determinism").collect();
    assert_eq!(hits.len(), 1, "{d:?}");
    assert_eq!(hits[0].line, base_lines + 2, "anchored to the seeded Instant::now line");
}

#[test]
fn seeded_wall_clock_read_in_real_partition_is_caught() {
    let src = std::fs::read_to_string(workspace_root().join("crates/core/src/partition.rs"))
        .expect("read partition.rs");
    let base_lines = src.lines().count() as u32;
    let mutated = format!("{src}fn seeded_stamp() {{\n    let t = std::time::Instant::now();\n}}\n");
    let (clean, _) = audit_source(&SourceFile::parse("crates/core/src/partition.rs", &src));
    assert!(clean.is_empty(), "today's partition.rs must be clean: {clean:?}");
    let (d, _) = audit_source(&SourceFile::parse("crates/core/src/partition.rs", &mutated));
    let hits: Vec<&pm_audit::Diagnostic> =
        d.iter().filter(|d| d.rule == "determinism").collect();
    assert_eq!(hits.len(), 1, "{d:?}");
    assert_eq!(hits[0].line, base_lines + 2, "anchored to the seeded Instant::now line");
}
