//! Integration test of the full evaluation pipeline at reduced (CI) scale:
//! generate Adult-like data → anatomize → mine rules → estimate → score.

use pm_anonymize::anatomy::{AnatomyBucketizer, AnatomyConfig};
use pm_anonymize::ldiv;
use pm_assoc::miner::{MinerConfig, RuleMiner};
use pm_datagen::adult::{AdultGenerator, AdultGeneratorConfig};
use pm_microdata::distribution::QiSaDistribution;
use privacy_maxent::engine::{Engine, EngineConfig};
use privacy_maxent::knowledge::KnowledgeBase;
use privacy_maxent::metrics;

fn pipeline(records: usize, seed: u64) -> (
    pm_microdata::dataset::Dataset,
    QiSaDistribution,
    pm_anonymize::published::PublishedTable,
    pm_assoc::miner::MinedRules,
) {
    let data = AdultGenerator::new(AdultGeneratorConfig { records, seed }).generate();
    let truth = QiSaDistribution::from_dataset(&data).unwrap();
    let table = AnatomyBucketizer::new(AnatomyConfig { ell: 5, exempt_top: 1 })
        .publish(&data)
        .unwrap();
    let rules = RuleMiner::new(MinerConfig { min_support: 3, arities: vec![1, 2] })
        .mine(&data);
    (data, truth, table, rules)
}

#[test]
fn published_table_is_relaxed_5_diverse() {
    let (_, _, table, _) = pipeline(1500, 3);
    let exempt = ldiv::most_frequent_sa(&table, 1);
    assert!(ldiv::satisfies_relaxed_diversity(&table, 5, &exempt));
    assert_eq!(table.num_buckets(), 300);
}

#[test]
fn accuracy_is_monotone_in_k() {
    let (data, truth, table, rules) = pipeline(1500, 4);
    let cfg = EngineConfig::builder().residual_limit(f64::INFINITY).build();
    let mut last = f64::INFINITY;
    for k in [0usize, 20, 100, 500] {
        let picked = rules.top_k(k / 2, k / 2);
        let kb = KnowledgeBase::from_rules(picked.iter().copied(), data.schema()).unwrap();
        let est = Engine::new(cfg.clone()).estimate(&table, &kb).unwrap();
        let acc = metrics::estimation_accuracy(&truth, &est);
        assert!(
            acc <= last + 1e-6,
            "K={k}: accuracy {acc} should not exceed previous {last}"
        );
        assert!(acc >= 0.0);
        last = acc;
    }
}

#[test]
fn mined_knowledge_is_always_feasible() {
    // Section 4.2's guarantee: knowledge derived from the original data can
    // never contradict the published data's invariants.
    for seed in 0..3u64 {
        let (data, _, table, rules) = pipeline(800, 100 + seed);
        let picked = rules.top_k(150, 150);
        let kb = KnowledgeBase::from_rules(picked.iter().copied(), data.schema()).unwrap();
        let result = Engine::new(
            EngineConfig::builder().residual_limit(f64::INFINITY).build(),
        )
        .estimate(&table, &kb);
        assert!(result.is_ok(), "seed {seed}: {:?}", result.err());
    }
}

#[test]
fn estimate_satisfies_every_compiled_constraint() {
    let (data, _, table, rules) = pipeline(1000, 7);
    let picked = rules.top_k(40, 40);
    let kb = KnowledgeBase::from_rules(picked.iter().copied(), data.schema()).unwrap();
    let est = Engine::default().estimate(&table, &kb).unwrap();

    // Rebuild the constraint system independently and check residuals.
    use privacy_maxent::compile::compile_knowledge;
    use privacy_maxent::invariants::data_invariants;
    use privacy_maxent::terms::TermIndex;
    let index = TermIndex::build(&table);
    let mut constraints = data_invariants(&table, &index, false);
    constraints.extend(compile_knowledge(&kb, &table, &index).unwrap());
    let p = est.term_values();
    for c in &constraints {
        assert!(
            c.residual(p) < 1e-5,
            "constraint {:?} violated by {:.2e}",
            c.origin,
            c.residual(p)
        );
    }
}

#[test]
fn disclosure_grows_with_knowledge() {
    let (data, _, table, rules) = pipeline(1200, 9);
    let base = metrics::max_disclosure(&Engine::uniform_estimate(&table));
    let picked = rules.top_k(300, 300);
    let kb = KnowledgeBase::from_rules(picked.iter().copied(), data.schema()).unwrap();
    let est = Engine::new(EngineConfig::builder().residual_limit(f64::INFINITY).build())
        .estimate(&table, &kb)
        .unwrap();
    let with = metrics::max_disclosure(&est);
    assert!(
        with >= base - 1e-9,
        "knowledge should not reduce worst-case disclosure: {with} vs {base}"
    );
}

#[test]
fn data_size_sweep_mechanism() {
    // The Figure 7(b)/(c) mechanism: solve increasingly large prefixes of
    // the dataset, each bucketized and mined independently so the
    // constraint systems stay self-consistent.
    let full = AdultGenerator::new(AdultGeneratorConfig { records: 2000, seed: 11 }).generate();
    for n in [500usize, 1000, 2000] {
        let data = full.head(n);
        let table = AnatomyBucketizer::new(AnatomyConfig { ell: 5, exempt_top: 1 })
            .publish(&data)
            .unwrap();
        assert_eq!(table.num_buckets(), n / 5);
        let rules = RuleMiner::new(MinerConfig { min_support: 3, arities: vec![1] })
            .mine(&data);
        let picked = rules.top_k(20, 20);
        let kb = KnowledgeBase::from_rules(picked.iter().copied(), data.schema()).unwrap();
        // The paper's performance runs skip Section 5.5, so decompose is off.
        let est = Engine::new(
            EngineConfig::builder().decompose(false).residual_limit(f64::INFINITY).build(),
        )
        .estimate(&table, &kb)
        .unwrap();
        assert_eq!(est.stats.num_components, 1);
        assert!(est.stats.component_stats.len() <= 1);
    }
}
