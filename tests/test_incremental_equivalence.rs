//! Equivalence of the incremental `Analyst` session and the one-shot
//! engine.
//!
//! The session redesign's central contract: **any** interleaving of
//! `add_knowledge` / `remove_knowledge` / `refresh` is bit-identical to a
//! from-scratch `Engine::estimate` holding the same final knowledge set (in
//! the same insertion order) — not merely close, identical — for every
//! thread count. Clean components are reused verbatim and dirty ones
//! re-solve the identical cold-started local system, so the interleaving
//! history must be unobservable in the result.

use pm_anonymize::anatomy::{AnatomyBucketizer, AnatomyConfig};
use pm_anonymize::published::PublishedTable;
use pm_assoc::miner::{MinerConfig, RuleMiner};
use pm_datagen::adult::{AdultGenerator, AdultGeneratorConfig};
use privacy_maxent::analyst::{Analyst, KnowledgeHandle};
use privacy_maxent::engine::{Engine, EngineConfig, Estimate};
use privacy_maxent::knowledge::{Knowledge, KnowledgeBase};
use proptest::prelude::*;

fn config(threads: usize) -> EngineConfig {
    EngineConfig::builder().threads(threads).residual_limit(f64::INFINITY).build()
}

/// Seeded Adult-like workload: publication + mined Top-(K+, K−) knowledge
/// as individual items the ops feed one at a time.
fn workload(records: usize, seed: u64, k: usize) -> (PublishedTable, Vec<Knowledge>) {
    let data = AdultGenerator::new(AdultGeneratorConfig { records, seed }).generate();
    let table = AnatomyBucketizer::new(AnatomyConfig { ell: 5, exempt_top: 1 })
        .publish(&data)
        .expect("bucketization succeeds");
    let rules = RuleMiner::new(MinerConfig { min_support: 3, arities: vec![1, 2] })
        .mine(&data);
    let items = rules
        .top_k(k / 2, k - k / 2)
        .iter()
        .map(|r| Knowledge::from_rule(r, data.schema()).expect("mined rules are valid"))
        .collect();
    (table, items)
}

/// Drives a session through an op tape (0 = add next item, 1 = remove a
/// live item, 2 = refresh; infeasible ops fall through to refresh), then
/// refreshes once more so no delta is left pending. Returns the session
/// and its final knowledge set in insertion order.
fn apply_ops(
    table: &PublishedTable,
    items: &[Knowledge],
    ops: &[usize],
    threads: usize,
) -> (Analyst, Vec<Knowledge>) {
    let mut analyst = Analyst::new(table.clone(), config(threads)).expect("baseline solves");
    let mut next = 0usize;
    let mut live: Vec<KnowledgeHandle> = Vec::new();
    for &op in ops {
        match op {
            0 if next < items.len() => {
                live.push(analyst.add_knowledge(items[next].clone()).expect("compiles"));
                next += 1;
            }
            1 if !live.is_empty() => {
                let h = live.remove(live.len() / 2);
                analyst.remove_knowledge(h).expect("handle is live");
            }
            _ => {
                analyst.refresh().expect("mined knowledge is feasible");
            }
        }
    }
    analyst.refresh().expect("mined knowledge is feasible");
    let final_items = analyst.knowledge().map(|(_, k)| k.clone()).collect();
    (analyst, final_items)
}

fn from_scratch(table: &PublishedTable, items: &[Knowledge], threads: usize) -> Estimate {
    let mut kb = KnowledgeBase::new();
    for item in items {
        kb.push(item.clone()).expect("valid knowledge");
    }
    Engine::new(config(threads)).estimate(table, &kb).expect("feasible")
}

fn assert_bit_identical(session: &Analyst, scratch: &Estimate, what: &str) {
    assert_eq!(
        session.estimate().term_values(),
        scratch.term_values(),
        "{what}: raw P(q, s, b) terms differ"
    );
    for q in 0..scratch.distinct_qi() {
        assert_eq!(
            session.estimate().conditional_row(q),
            scratch.conditional_row(q),
            "{what}: P(S | q={q}) differs"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The ISSUE's equivalence property: random interleavings of
    /// add/remove/refresh match the from-scratch estimate bitwise, with the
    /// one-shot comparator swept over threads 1 / 2 / auto.
    #[test]
    fn interleavings_match_from_scratch_bitwise(
        seed in 1u64..10_000,
        k in 20usize..60,
        ops in proptest::collection::vec(0usize..3, 8..24),
    ) {
        let (table, items) = workload(500, seed, k);
        let (session, final_items) = apply_ops(&table, &items, &ops, 2);
        prop_assert!(!session.is_stale(), "trailing refresh left the session stale");
        for threads in [1usize, 2, 0] {
            let scratch = from_scratch(&table, &final_items, threads);
            assert_bit_identical(
                &session,
                &scratch,
                &format!("seed={seed} k={k} ops={ops:?} threads={threads}"),
            );
        }
    }

    /// Removing everything that was added returns to the uniform baseline
    /// bit-for-bit, regardless of the add batching.
    #[test]
    fn full_retraction_restores_baseline(seed in 1u64..10_000, k in 10usize..40) {
        let (table, items) = workload(400, seed, k);
        let uniform = Engine::uniform_estimate(&table);
        let mut analyst = Analyst::new(table, config(1)).unwrap();
        let handles = analyst.add_knowledge_batch(&items).unwrap();
        analyst.refresh().unwrap();
        for h in handles {
            analyst.remove_knowledge(h).unwrap();
        }
        analyst.refresh().unwrap();
        prop_assert_eq!(analyst.estimate().term_values(), uniform.term_values());
    }
}

/// Incremental sessions at scale: each delta re-solves a strict subset of
/// the components, and the result still matches from-scratch bitwise.
#[test]
fn deltas_resolve_strict_subsets_at_scale() {
    let (table, items) = workload(900, 42, 40);
    let (head, tail) = items.split_at(items.len() - 3);
    let mut analyst = Analyst::new(table.clone(), config(2)).expect("baseline solves");
    analyst.add_knowledge_batch(head).unwrap();
    analyst.refresh().unwrap();
    let mut fed: Vec<Knowledge> = head.to_vec();
    for delta in tail {
        let _ = analyst.add_knowledge(delta.clone()).unwrap();
        let stats = analyst.refresh().unwrap();
        assert!(
            stats.resolved + stats.closed_form < stats.components,
            "single-rule delta re-solved {} of {} components",
            stats.resolved + stats.closed_form,
            stats.components
        );
        assert!(stats.reused > 0, "nothing was reused");
        fed.push(delta.clone());
        let scratch = from_scratch(&table, &fed, 1);
        assert_bit_identical(&analyst, &scratch, "at-scale delta");
    }
}

/// Warm-started sessions (`EngineConfig::warm_start`) follow a different
/// solver path — same optimum within tolerance, explicitly not bitwise.
#[test]
fn warm_start_matches_within_tolerance_at_scale() {
    let (table, items) = workload(700, 7, 30);
    let (head, tail) = items.split_at(items.len() - 2);
    let mut cold = Analyst::new(table.clone(), config(1)).unwrap();
    let mut warm = Analyst::new(
        table,
        EngineConfig::builder().threads(1).residual_limit(f64::INFINITY).warm_start(true).build(),
    )
    .unwrap();
    for analyst in [&mut cold, &mut warm] {
        analyst.add_knowledge_batch(head).unwrap();
        analyst.refresh().unwrap();
        for delta in tail {
            let _ = analyst.add_knowledge(delta.clone()).unwrap();
            analyst.refresh().unwrap();
        }
    }
    let max_delta = cold
        .estimate()
        .term_values()
        .iter()
        .zip(warm.estimate().term_values())
        .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()));
    assert!(max_delta < 1e-6, "warm path deviated by {max_delta}");
}
