//! Multi-tenant serve soak: concurrency must be bit-invisible.
//!
//! N client threads drive M tenants through interleaved tapes — batched
//! query storms, knowledge adds/removes, refreshes and table-delta epochs
//! all racing on one live server — while extra read-only tenants hammer
//! their pinned snapshots. The contract under all that interleaving is the
//! same one `test_concurrent_sessions.rs` proves for the library layer:
//! **every** recorded response must be bit-identical to a single-threaded
//! `Analyst` replay of that tenant's deterministic tape on the
//! reconstructed epoch chain, and every read-only response must be
//! bit-identical to the baseline estimate of the epoch the tenant's hello
//! reported. No thread schedule may be observable in any served bit.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pm_anonymize::anatomy::{AnatomyBucketizer, AnatomyConfig};
use pm_anonymize::published::PublishedTable;
use pm_assoc::miner::{MinerConfig, RuleMiner};
use pm_datagen::adult::{AdultGenerator, AdultGeneratorConfig};
use pm_serve::client::Client;
use pm_serve::loadgen::{self, LoadgenOptions, PhaseRecord, TapeOp};
use pm_serve::protocol::{WireDeltaOp, WireKnowledge};
use pm_serve::registry::{Limits, Registry};
use pm_serve::server::{Backend, Server};
use privacy_maxent::analyst::{Analyst, KnowledgeHandle};
use privacy_maxent::compiled::CompiledTable;
use privacy_maxent::delta::TableDelta;
use privacy_maxent::engine::EngineConfig;
use privacy_maxent::knowledge::Knowledge;

const TENANTS: usize = 6;
const PHASES: usize = 3;
const READERS: usize = 4;
const SEED: u64 = 11;

fn config() -> EngineConfig {
    EngineConfig::builder().residual_limit(f64::INFINITY).threads(1).build()
}

/// Seeded Adult-like workload (same recipe as `test_concurrent_sessions`):
/// publication + mined Top-(K+, K−) knowledge as the tape pool.
fn workload(records: usize, seed: u64, k: usize) -> (PublishedTable, Vec<WireKnowledge>) {
    let data = AdultGenerator::new(AdultGeneratorConfig { records, seed }).generate();
    let table = AnatomyBucketizer::new(AnatomyConfig { ell: 5, exempt_top: 1 })
        .publish(&data)
        .expect("bucketization succeeds");
    let rules = RuleMiner::new(MinerConfig { min_support: 3, arities: vec![1, 2] })
        .mine(&data);
    let pool = rules
        .top_k(k / 2, k - k / 2)
        .iter()
        .filter_map(|r| {
            let k = Knowledge::from_rule(r, data.schema()).ok()?;
            WireKnowledge::from_knowledge(&k)
        })
        .collect();
    (table, pool)
}

/// One record-level delta per phase boundary, drawn from the evolving
/// table's own multisets so every retract/move claim holds at apply time.
fn delta_tapes(base: &Arc<CompiledTable>, n: usize) -> Vec<Vec<WireDeltaOp>> {
    let mut tapes = Vec::new();
    let mut current = Arc::clone(base);
    for i in 0..n {
        let table = current.table();
        let m = table.num_buckets();
        let b = (i * 379 + 17) % m;
        let bucket = table.bucket(b);
        let q = bucket.qi_counts()[(i * 53) % bucket.distinct_qi()].0;
        let s = bucket.sa_counts()[(i * 31) % bucket.distinct_sa()].0;
        let tuple = table.interner().tuple(q).to_vec();
        let delta = match i % 3 {
            0 => TableDelta::new().insert(tuple, s, (b + 1) % m),
            1 => TableDelta::new().retract(tuple, s, b),
            _ => TableDelta::new().move_record(tuple, s, b, (b + 1) % m),
        };
        tapes.push(delta.ops().iter().map(WireDeltaOp::from_op).collect());
        current = Arc::new(current.apply(&delta).expect("soak delta applies"));
    }
    tapes
}

/// Replays one tenant's tape on a direct single-threaded `Analyst` and
/// bit-compares every recorded sample. The recorded `rolled_back` flag is
/// forced (the server decided feasibility at an interleaving the replay
/// cannot reconstruct); everything else is re-derived from the seed.
fn replay_tenant(
    chain: &[Arc<CompiledTable>],
    pool: &[WireKnowledge],
    tenant: usize,
    records: &[&PhaseRecord],
) {
    let base_epoch = chain[0].epoch();
    let tape = loadgen::tenant_tape(pool, tenant, records.len(), SEED);
    let mut analyst = Analyst::open(Arc::clone(&chain[0]));
    let mut handles: Vec<KnowledgeHandle> = Vec::new();
    for (record, op) in records.iter().zip(&tape) {
        while analyst.epoch() < record.epoch {
            let idx = usize::try_from(analyst.epoch() - base_epoch + 1).unwrap();
            analyst.rebase(&chain[idx]).expect("stepwise rebase follows the chain");
        }
        match op {
            TapeOp::Add(item) if !record.rolled_back => {
                handles.push(
                    analyst
                        .add_knowledge(item.clone().into_knowledge())
                        .expect("replayed add registers"),
                );
            }
            TapeOp::Add(_) => {} // rolled back on the server: add + remove cancel
            TapeOp::Remove(index) => {
                if !handles.is_empty() {
                    let h = handles.remove(index % handles.len());
                    analyst.remove_knowledge(h).expect("replayed remove resolves");
                }
            }
        }
        analyst.refresh().expect("replayed refresh succeeds");
        assert_eq!(analyst.epoch(), record.epoch, "replay lands on the recorded epoch");
        for &(q, s, p) in &record.samples {
            let direct = analyst.conditional(q as usize, s);
            assert_eq!(
                direct.to_bits(),
                p.to_bits(),
                "tenant {tenant} phase {} sample ({q}, {s}): served {p}, replay {direct}",
                record.phase,
            );
        }
    }
}

/// The soak: tape-driving tenants + read-only chaos tenants, all
/// concurrent, then a full single-threaded replay of every recorded bit.
/// The whole storm runs once per backend — the reactor's event loop and
/// the threaded reader/writer pairs must both be bit-invisible.
#[test]
fn concurrent_tapes_replay_bit_identically() {
    let (table, pool) = workload(800, SEED, 24);
    assert!(pool.len() >= 8, "soak needs a real knowledge pool");
    let base = Arc::new(CompiledTable::build(table, config()).expect("workload compiles"));
    let tapes = delta_tapes(&base, PHASES - 1);

    // Reconstruct the epoch chain the server will walk (worker 0 of the
    // loadgen is the sole delta driver, so tape order == epoch order).
    let mut chain = vec![Arc::clone(&base)];
    for tape in &tapes {
        let delta = WireDeltaOp::into_delta(tape.clone());
        chain.push(Arc::new(
            chain.last().unwrap().apply(&delta).expect("chain reconstructs"),
        ));
    }

    for backend in [Backend::default(), Backend::Threaded] {
        soak_once(backend, &base, &pool, &tapes, &chain);
    }
}

fn soak_once(
    backend: Backend,
    base: &Arc<CompiledTable>,
    pool: &[WireKnowledge],
    tapes: &[Vec<WireDeltaOp>],
    chain: &[Arc<CompiledTable>],
) {
    let registry = Arc::new(Registry::new(Arc::clone(base), None, Limits::default()));
    let mut server = Server::bind_with("127.0.0.1:0", registry, backend).expect("loopback bind");
    let addr = server.addr();

    // Read-only chaos: each reader binds its own tenant, pins the epoch its
    // hello reported, and checks every response against that epoch's
    // baseline estimate — all while deltas and refreshes race next door.
    let stop = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for r in 0..READERS {
        let stop = Arc::clone(&stop);
        let chain = chain.to_vec();
        readers.push(std::thread::spawn(move || {
            let mut client =
                Client::connect(addr, &format!("reader-{r}")).expect("reader hello");
            let hello = client.hello();
            let base_epoch = chain[0].epoch();
            let expected = chain
                .get(usize::try_from(hello.epoch - base_epoch).unwrap())
                .expect("hello epoch is on the chain")
                .baseline_estimate();
            let mut checked = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let q = (checked * 37) % hello.distinct_qi;
                let s = ((checked * 13) % hello.sa_cardinality) as u16;
                let p = client.query(q as u32, s).expect("reader query");
                assert_eq!(
                    p.to_bits(),
                    expected.conditional(q as usize, s).to_bits(),
                    "reader {r} diverged from its pinned epoch {}",
                    hello.epoch,
                );
                checked += 1;
            }
            checked
        }));
        // Stagger the readers so they pin different epochs of the chain.
        std::thread::sleep(Duration::from_millis(3));
    }

    // The tape-driving tenants, one client thread each.
    let opts = LoadgenOptions {
        tenants: TENANTS,
        phases: PHASES,
        batches_per_phase: 4,
        batch: 32,
        samples_per_phase: 3,
        seed: SEED,
    };
    let report = loadgen::run(addr, pool, tapes, &opts).expect("soak loop completes");
    stop.store(true, Ordering::Relaxed);
    let read_checks: u64 = readers.into_iter().map(|h| h.join().expect("reader ok")).sum();
    server.shutdown();

    assert_eq!(report.deltas as usize, tapes.len(), "every delta epoch applied");
    assert_eq!(report.phases.len(), TENANTS * PHASES, "every phase recorded");
    assert!(read_checks > 0, "the chaos readers actually read");

    // The payoff: replay every tenant single-threaded, bit-for-bit.
    for tenant in 0..TENANTS {
        let records: Vec<&PhaseRecord> = report
            .phases
            .iter()
            .filter(|p| p.tenant == tenant as u32)
            .collect();
        assert_eq!(records.len(), PHASES);
        replay_tenant(chain, pool, tenant, &records);
    }
}

/// Without table deltas there is no epoch race left, so two identical runs
/// against two fresh servers must record identical bits end to end — the
/// tapes are pure functions of the seed, and any drift between runs is
/// server-side nondeterminism leaking through. (With deltas racing, the
/// epoch a refresh lands on is legitimately schedule-dependent; that case
/// is covered by the per-run replay above, which verifies against the
/// *recorded* epochs.)
#[test]
fn identical_runs_record_identical_bits() {
    let (table, pool) = workload(400, SEED ^ 7, 16);
    let base = Arc::new(CompiledTable::build(table, config()).expect("workload compiles"));
    let tapes: Vec<Vec<WireDeltaOp>> = Vec::new();
    let opts = LoadgenOptions {
        tenants: 3,
        phases: 2,
        batches_per_phase: 2,
        batch: 16,
        samples_per_phase: 2,
        seed: SEED ^ 7,
    };

    // Two runs per backend; all four must agree — the backend itself is
    // just as bit-invisible as the thread schedule within a backend.
    let mut recorded = Vec::new();
    for backend in [Backend::default(), Backend::default(), Backend::Threaded, Backend::Threaded] {
        let registry =
            Arc::new(Registry::new(Arc::clone(&base), None, Limits::default()));
        let mut server =
            Server::bind_with("127.0.0.1:0", registry, backend).expect("loopback bind");
        let report =
            loadgen::run(server.addr(), &pool, &tapes, &opts).expect("loop completes");
        server.shutdown();
        recorded.push(report.phases);
    }
    assert_eq!(recorded[0], recorded[1], "two identical reactor runs drifted");
    assert_eq!(recorded[2], recorded[3], "two identical threaded runs drifted");
    assert_eq!(recorded[0], recorded[2], "the backends served different bits");
}
