//! Equivalence of the parallel and sequential engines.
//!
//! The Section 5.5 decomposition yields independent per-component maxent
//! systems; the engine solves them on a worker pool and merges results in
//! component order. These property tests pin the central contract: for any
//! seeded workload, `threads = 2` and `threads = 8` produce **bit-identical**
//! `P(S | Q)` tables (and raw term values) to the sequential `threads = 1`
//! path — not merely close, identical.

use pm_anonymize::anatomy::{AnatomyBucketizer, AnatomyConfig};
use pm_anonymize::published::PublishedTable;
use pm_assoc::miner::{MinerConfig, RuleMiner};
use pm_datagen::adult::{AdultGenerator, AdultGeneratorConfig};
use privacy_maxent::engine::{Engine, EngineConfig, Estimate};
use privacy_maxent::knowledge::KnowledgeBase;
use proptest::prelude::*;

/// Seeded Adult-like workload: publication + mined Top-(K+, K−) knowledge.
fn workload(records: usize, seed: u64, k: usize) -> (PublishedTable, KnowledgeBase) {
    let data = AdultGenerator::new(AdultGeneratorConfig { records, seed }).generate();
    let table = AnatomyBucketizer::new(AnatomyConfig { ell: 5, exempt_top: 1 })
        .publish(&data)
        .expect("bucketization succeeds");
    let rules = RuleMiner::new(MinerConfig { min_support: 3, arities: vec![1, 2] })
        .mine(&data);
    let picked = rules.top_k(k / 2, k - k / 2);
    let kb = KnowledgeBase::from_rules(picked.iter().copied(), data.schema())
        .expect("mined rules are valid knowledge");
    (table, kb)
}

fn estimate(table: &PublishedTable, kb: &KnowledgeBase, threads: usize) -> Estimate {
    Engine::new(
        EngineConfig::builder().threads(threads).residual_limit(f64::INFINITY).build(),
    )
    .estimate(table, kb)
    .expect("mined knowledge is feasible")
}

/// Every observable of the two estimates is bitwise equal.
fn assert_bit_identical(reference: &Estimate, other: &Estimate, what: &str) {
    assert_eq!(
        reference.term_values(),
        other.term_values(),
        "{what}: raw P(q, s, b) terms differ"
    );
    for q in 0..reference.distinct_qi() {
        assert_eq!(
            reference.conditional_row(q),
            other.conditional_row(q),
            "{what}: P(S | q={q}) differs"
        );
    }
    assert_eq!(
        reference.stats.num_components, other.stats.num_components,
        "{what}: component structure differs"
    );
    assert_eq!(
        reference.stats.num_irrelevant, other.stats.num_irrelevant,
        "{what}: irrelevant-component count differs"
    );
    assert_eq!(
        reference.stats.num_constraints, other.stats.num_constraints,
        "{what}: reduced constraint count differs"
    );
    assert_eq!(
        reference.stats.num_free_terms, other.stats.num_free_terms,
        "{what}: free-term count differs"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The ISSUE's equivalence property: threads ∈ {1, 2, 8} agree bitwise
    /// on seeded `pm-datagen` workloads.
    #[test]
    fn parallel_estimate_is_bit_identical(seed in 1u64..10_000, k in 20usize..80) {
        let (table, kb) = workload(600, seed, k);
        let sequential = estimate(&table, &kb, 1);
        for threads in [2usize, 8] {
            let parallel = estimate(&table, &kb, threads);
            assert_bit_identical(
                &sequential,
                &parallel,
                &format!("seed={seed} k={k} threads={threads}"),
            );
        }
    }

    /// `threads = 0` (auto = available cores) is the same fixed point.
    #[test]
    fn auto_thread_count_is_bit_identical(seed in 1u64..10_000) {
        let (table, kb) = workload(400, seed, 30);
        let sequential = estimate(&table, &kb, 1);
        let auto = estimate(&table, &kb, 0);
        assert_bit_identical(&sequential, &auto, &format!("seed={seed} auto"));
    }
}

/// The no-knowledge fast path (everything irrelevant, Theorem 5) is also
/// thread-invariant — no worker is ever spawned, but the contract holds.
#[test]
fn no_knowledge_is_bit_identical_across_threads() {
    let (table, _) = workload(500, 77, 0);
    let empty = KnowledgeBase::new();
    let sequential = estimate(&table, &empty, 1);
    assert_eq!(sequential.stats.num_irrelevant, sequential.stats.num_components);
    for threads in [2usize, 8] {
        let parallel = estimate(&table, &empty, threads);
        assert_bit_identical(&sequential, &parallel, &format!("threads={threads}"));
    }
}
