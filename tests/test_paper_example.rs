//! End-to-end integration test on the paper's running example (Figure 1):
//! every worked number in Sections 3–5 must be reproduced by the public API.

use pm_anonymize::fixtures::paper_example;
use pm_microdata::distribution::QiSaDistribution;
use privacy_maxent::engine::{Engine, EngineConfig, SolverKind};
use privacy_maxent::knowledge::{Knowledge, KnowledgeBase};
use privacy_maxent::metrics;

#[test]
fn figure1_structure() {
    let (data, table) = paper_example();
    assert_eq!(data.len(), 10);
    assert_eq!(table.num_buckets(), 3);
    assert_eq!(table.interner().distinct(), 6, "q1..q6");
    // SA symbols s1..s5 all present.
    let present: usize = (0..5u16)
        .filter(|&s| !table.buckets_with_sa(s).is_empty())
        .count();
    assert_eq!(present, 5);
}

#[test]
fn uniform_baseline_matches_equation_one() {
    // Eq. (1): P(S | Q, B) = portion of S in bucket B.
    let (_, table) = paper_example();
    let est = Engine::uniform_estimate(&table);
    let q1 = table.interner().lookup(&[0, 0]).unwrap();
    // In bucket 1, flu (s2, code 0) is 2 of 4 records: P(q1, flu, 1) =
    // P(q1, b1) · 2/4 = 0.2 · 0.5 = 0.1.
    assert!((est.p_qsb(q1, 0, 0) - 0.1).abs() < 1e-12);
    // Across buckets: P(flu | q1) = (0.1 + 0)/0.3 = 1/3.
    assert!((est.conditional(q1, 0) - 1.0 / 3.0).abs() < 1e-12);
}

#[test]
fn section_31_inference_end_to_end() {
    let (_, table) = paper_example();
    let mut kb = KnowledgeBase::new();
    kb.push(Knowledge::Conditional {
        antecedent: vec![(0, 1), (1, 0)],
        sa: 2,
        probability: 0.0,
    })
    .unwrap();
    for sa in [2u16, 0u16] {
        kb.push(Knowledge::Conditional {
            antecedent: vec![(0, 0), (1, 1)],
            sa,
            probability: 0.0,
        })
        .unwrap();
    }
    let est = Engine::default().estimate(&table, &kb).unwrap();
    let q1 = table.interner().lookup(&[0, 0]).unwrap();
    let q2 = table.interner().lookup(&[1, 0]).unwrap();
    let q3 = table.interner().lookup(&[0, 1]).unwrap();
    // Paper: q3 → s3 (pneumonia), q2 → s2 (flu), q1 pair splits {s1, s2}.
    assert!((est.p_qsb(q3, 1, 0) - 0.1).abs() < 1e-7);
    assert!((est.p_qsb(q2, 0, 0) - 0.1).abs() < 1e-7);
    assert!((est.p_qsb(q1, 2, 0) - 0.1).abs() < 1e-7);
    assert!((est.p_qsb(q1, 0, 0) - 0.1).abs() < 1e-7);
}

#[test]
fn knowledge_monotonically_reduces_accuracy_metric() {
    // The qualitative claim behind Figure 5, on the paper example: adding
    // true knowledge can only bring the estimate closer to the truth.
    let (data, table) = paper_example();
    let truth = QiSaDistribution::from_dataset(&data).unwrap();
    let mut kb = KnowledgeBase::new();
    let mut last = metrics::estimation_accuracy(&truth, &Engine::uniform_estimate(&table));
    // Three increasingly informative true statements.
    let steps = vec![
        Knowledge::Conditional { antecedent: vec![(0, 0)], sa: 2, probability: 0.0 },
        Knowledge::Conditional { antecedent: vec![(0, 0)], sa: 0, probability: 0.5 },
        Knowledge::Conditional { antecedent: vec![(0, 1), (1, 0)], sa: 3, probability: 0.5 },
    ];
    for k in steps {
        kb.push(k).unwrap();
        let est = Engine::default().estimate(&table, &kb).unwrap();
        let acc = metrics::estimation_accuracy(&truth, &est);
        assert!(
            acc <= last + 1e-9,
            "accuracy must not increase: {acc} after {last}"
        );
        last = acc;
    }
}

#[test]
fn engine_configs_agree_on_paper_example() {
    let (_, table) = paper_example();
    let mut kb = KnowledgeBase::new();
    kb.push(Knowledge::Conditional {
        antecedent: vec![(1, 0)],
        sa: 0,
        probability: 0.25,
    })
    .unwrap();
    let reference = Engine::default().estimate(&table, &kb).unwrap();
    for (decompose, concise) in [(true, false), (false, true), (false, false)] {
        let engine = Engine::new(
            EngineConfig::builder().decompose(decompose).concise_invariants(concise).build(),
        );
        let est = engine.estimate(&table, &kb).unwrap();
        for q in 0..6 {
            for s in 0..5u16 {
                assert!(
                    (est.conditional(q, s) - reference.conditional(q, s)).abs() < 1e-6,
                    "decompose={decompose} concise={concise} q={q} s={s}"
                );
            }
        }
    }
}

#[test]
fn iterative_scaling_solvers_reach_the_same_optimum() {
    let (_, table) = paper_example();
    let mut kb = KnowledgeBase::new();
    kb.push(Knowledge::Conditional {
        antecedent: vec![(0, 1)],
        sa: 3,
        probability: 0.3,
    })
    .unwrap();
    let reference = Engine::default().estimate(&table, &kb).unwrap();
    for solver in [SolverKind::Gis, SolverKind::Iis] {
        let est = Engine::new(
            EngineConfig::builder().solver(solver).max_iterations(100_000).build(),
        )
        .estimate(&table, &kb)
        .unwrap();
        for q in 0..6 {
            for s in 0..5u16 {
                assert!(
                    (est.conditional(q, s) - reference.conditional(q, s)).abs() < 1e-4,
                    "{solver:?} q={q} s={s}"
                );
            }
        }
    }
}
