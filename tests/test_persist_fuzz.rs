//! Decoder corruption fuzzing.
//!
//! Whatever bytes are on disk, the loaders must fail *softly*: random
//! single-byte flips (and random truncations, and wholesale garbage) in
//! the snapshot or WAL must surface as structured `PmError` values —
//! `Corrupt { section, offset, .. }` / `UnsupportedFormat` — never a
//! panic, never an attacker-controlled allocation. The WAL recoverer is
//! deliberately lenient about *tails* (a flip in the last record is
//! indistinguishable from a crash mid-append), so for it the contract is:
//! never panic, and when it succeeds, serve a bit-exact committed prefix.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use pm_anonymize::fixtures::paper_example;
use privacy_maxent::compiled::CompiledTable;
use privacy_maxent::delta::TableDelta;
use privacy_maxent::engine::EngineConfig;
use privacy_maxent::error::PmError;
use privacy_maxent::persist::{
    recover, EpochWal, FORMAT_VERSION, SNAPSHOT_FILE, WAL_FILE,
};
use proptest::prelude::*;

fn config() -> EngineConfig {
    EngineConfig::builder().threads(1).residual_limit(f64::INFINITY).build()
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pmx-fuzz-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// A persisted snapshot + 2-epoch WAL over the Figure 1 table, plus the
/// per-epoch expected estimates.
fn seed_dir(name: &str) -> (PathBuf, Vec<Vec<f64>>) {
    let (_, table) = paper_example();
    let e0 = Arc::new(CompiledTable::build(table, config()).expect("baseline solves"));
    let dir = tmpdir(name);
    e0.save(dir.join(SNAPSHOT_FILE)).expect("save succeeds");
    let mut wal = EpochWal::create(&dir, e0.epoch()).expect("wal create");
    let mut chain = vec![Arc::clone(&e0)];
    for delta in [
        TableDelta::new().insert(vec![0, 0], 0, 1),
        TableDelta::new().move_record(vec![0, 0], 0, 1, 2),
    ] {
        let next = Arc::new(chain.last().unwrap().apply(&delta).expect("valid delta"));
        wal.append(next.epoch(), &delta, next.applied_delta().unwrap()).expect("append");
        chain.push(next);
    }
    let estimates = chain
        .iter()
        .map(|a| a.baseline_estimate().term_values().to_vec())
        .collect();
    (dir, estimates)
}

/// Structured decode failure: the error a fuzzed *snapshot* load is allowed
/// to produce. Anything else (panic, success, or an unrelated variant) is a
/// bug.
fn is_decode_error(e: &PmError) -> bool {
    matches!(e, PmError::Corrupt { .. } | PmError::UnsupportedFormat { .. })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-byte flips anywhere in a snapshot: every one is caught (each
    /// byte sits under the header's field validation or a section
    /// checksum), reported as a structured decode error, and never panics.
    #[test]
    fn snapshot_byte_flips_yield_corrupt(
        offset_sel in 0usize..1_000_000,
        bit in 0u32..8,
    ) {
        let (dir, _) = seed_dir("snap-flip");
        let path = dir.join(SNAPSHOT_FILE);
        let mut bytes = fs::read(&path).expect("read snapshot");
        let offset = offset_sel % bytes.len();
        bytes[offset] ^= 1 << bit;
        fs::write(&path, &bytes).expect("write");
        match CompiledTable::load(&path) {
            Err(e) => {
                prop_assert!(
                    is_decode_error(&e),
                    "flip at byte {} bit {}: wrong error {:?}", offset, bit, e
                );
                // The error chain is printable end to end (no panics in
                // Display either).
                let _ = format!("{e} / root: {}", e.root_cause());
            }
            Ok(_) => prop_assert!(
                false,
                "flip at byte {} bit {} went undetected", offset, bit
            ),
        }
        fs::remove_dir_all(&dir).ok();
    }

    /// Random truncations of the snapshot — every prefix is rejected
    /// softly. (The complete file loads; any strict prefix cannot.)
    #[test]
    fn snapshot_truncations_yield_corrupt(cut_sel in 0usize..1_000_000) {
        let (dir, _) = seed_dir("snap-cut");
        let path = dir.join(SNAPSHOT_FILE);
        let bytes = fs::read(&path).expect("read snapshot");
        let cut = cut_sel % bytes.len();
        fs::write(&path, &bytes[..cut]).expect("write");
        let err = CompiledTable::load(&path).expect_err("prefix must not load");
        prop_assert!(is_decode_error(&err), "cut at {}: wrong error {:?}", cut, err);
        fs::remove_dir_all(&dir).ok();
    }

    /// Single-byte flips anywhere in the WAL: `recover` must never panic.
    /// Flips under the header are hard errors; flips in record bytes tear
    /// the log at that record — recovery then serves a bit-exact committed
    /// prefix and leaves a WAL that `open_append` accepts.
    #[test]
    fn wal_byte_flips_recover_softly(
        offset_sel in 0usize..1_000_000,
        bit in 0u32..8,
    ) {
        let (dir, expected) = seed_dir("wal-flip");
        let path = dir.join(WAL_FILE);
        let mut bytes = fs::read(&path).expect("read wal");
        let offset = offset_sel % bytes.len();
        bytes[offset] ^= 1 << bit;
        fs::write(&path, &bytes).expect("write");
        match recover(&dir) {
            Ok(recovered) => {
                let epoch = recovered.artifact.epoch() as usize;
                prop_assert!(epoch < expected.len(), "replayed beyond the chain");
                prop_assert!(
                    offset >= 28,
                    "flip at header byte {} must be a hard error, not a recovery",
                    offset
                );
                prop_assert_eq!(
                    recovered.artifact.baseline_estimate().term_values(),
                    expected[epoch].as_slice(),
                    "flip at byte {}: prefix not bit-exact", offset
                );
                prop_assert!(
                    EpochWal::open_append(&dir).is_ok(),
                    "flip at byte {}: recovery left a WAL open_append rejects", offset
                );
            }
            Err(e) => prop_assert!(
                is_decode_error(&e),
                "flip at byte {} bit {}: wrong error {:?}", offset, bit, e
            ),
        }
        fs::remove_dir_all(&dir).ok();
    }

    /// Wholesale garbage files — random bytes, random length — must be
    /// rejected softly by both loaders, however implausible the content.
    #[test]
    fn garbage_files_never_panic(
        len in 0usize..4096,
        seed in 0u64..u64::MAX,
    ) {
        // Cheap xorshift fill: deterministic per case, no RNG dependency.
        let mut state = seed | 1;
        let garbage: Vec<u8> = (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state as u8
            })
            .collect();
        let dir = tmpdir("garbage");
        fs::write(dir.join(SNAPSHOT_FILE), &garbage).expect("write");
        fs::write(dir.join(WAL_FILE), &garbage).expect("write");
        let snap_err =
            CompiledTable::load(dir.join(SNAPSHOT_FILE)).expect_err("garbage must not load");
        prop_assert!(is_decode_error(&snap_err), "snapshot: {:?}", snap_err);
        // recover() reads the snapshot first, so garbage dies there; the
        // WAL-only surface is open_append.
        let wal_err = EpochWal::open_append(&dir).expect_err("garbage must not open");
        prop_assert!(is_decode_error(&wal_err), "wal: {:?}", wal_err);
        fs::remove_dir_all(&dir).ok();
    }
}

/// The targeted non-random cases: wrong magic, version from the future,
/// oversized section lengths, WAL version mismatch — each with its precise
/// error variant.
#[test]
fn targeted_corruption_cases() {
    let (dir, _) = seed_dir("targeted");
    let path = dir.join(SNAPSHOT_FILE);
    let pristine = fs::read(&path).unwrap();

    // Wrong magic.
    let mut bytes = pristine.clone();
    bytes[..8].copy_from_slice(b"NOTPMXS\0");
    fs::write(&path, &bytes).unwrap();
    match CompiledTable::load(&path).unwrap_err() {
        PmError::Corrupt { section, offset, .. } => {
            assert_eq!(section, "header");
            assert_eq!(offset, 0);
        }
        other => panic!("expected Corrupt header, got {other:?}"),
    }

    // Version from the future: a precise UnsupportedFormat, not Corrupt.
    let mut bytes = pristine.clone();
    bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 7).to_le_bytes());
    fs::write(&path, &bytes).unwrap();
    match CompiledTable::load(&path).unwrap_err() {
        PmError::UnsupportedFormat { found, supported } => {
            assert_eq!(found, FORMAT_VERSION + 7);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedFormat, got {other:?}"),
    }

    // A section length claiming more bytes than the file holds: rejected
    // by bounds-checking before any allocation is sized from it.
    let mut bytes = pristine.clone();
    bytes[20..28].copy_from_slice(&u64::MAX.to_le_bytes()); // META payload_len
    fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        CompiledTable::load(&path).unwrap_err(),
        PmError::Corrupt { .. }
    ));

    // WAL version mismatch surfaces from recover() too.
    fs::write(&path, &pristine).unwrap();
    let wal_path = dir.join(WAL_FILE);
    let mut wal_bytes = fs::read(&wal_path).unwrap();
    wal_bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    fs::write(&wal_path, &wal_bytes).unwrap();
    assert!(matches!(
        recover(&dir).unwrap_err(),
        PmError::UnsupportedFormat { .. }
    ));

    fs::remove_dir_all(&dir).ok();
}
