//! Golden end-to-end test on the paper's running example: anonymized table
//! (Figure 1(c) bucket layout) + background knowledge mined from the
//! original data → maxent engine → per-QI and per-individual disclosure
//! probabilities, checked against hand-computed exact values.
//!
//! With the single strongest mined negative rule `male ⇒ ¬breast cancer`
//! (confidence 1), the zero-forced terms are eliminated and each bucket's
//! remaining system has only its QI/SA marginal invariants, whose maxent
//! solution is the independence (outer-product) table — Theorem 5 /
//! Appendix B. That makes every number below derivable by hand:
//!
//! * Bucket 1 holds q1×2, q2, q3 with SA counts {flu: 2, pneumonia: 1,
//!   breast cancer: 1}. The zero rule sends all breast-cancer mass to q2
//!   (the only female), pinning q2's bucket-1 mass entirely; q1/q3 then
//!   split {flu, pneumonia} in proportion 2:1.
//! * Bucket 2 holds q1, q3, q4 with {hiv, pneumonia, breast cancer}; the
//!   breast-cancer record must be q4 (Grace) — full disclosure — and q1/q3
//!   split {hiv, pneumonia} evenly.
//! * Bucket 3 holds q2, q5, q6 with {hiv, lung cancer, flu} and no binding
//!   knowledge: the uniform (independence) split, 1/3 each.

use pm_anonymize::fixtures::paper_example;
use pm_anonymize::pseudonym::PseudonymTable;
use pm_assoc::miner::{MinerConfig, RuleMiner};
use pm_assoc::rule::RulePolarity;
use privacy_maxent::engine::Engine;
use privacy_maxent::individuals::IndividualEngine;
use privacy_maxent::knowledge::KnowledgeBase;

// SA value codes of the paper-example schema.
const FLU: u16 = 0;
const PNEUMONIA: u16 = 1;
const BREAST_CANCER: u16 = 2;
const HIV: u16 = 3;
const LUNG_CANCER: u16 = 4;

const TOL: f64 = 1e-6;

/// Mines the strongest negative rule from the original data and returns it
/// as a knowledge base, asserting it is exactly `male ⇒ ¬breast cancer`.
fn mined_knowledge() -> (KnowledgeBase, pm_anonymize::published::PublishedTable) {
    let (data, table) = paper_example();
    let mined = RuleMiner::new(MinerConfig { min_support: 3, arities: vec![1] }).mine(&data);
    let top = mined.top_k(0, 1);
    assert_eq!(top.len(), 1);
    let rule = top[0];
    assert_eq!(rule.polarity, RulePolarity::Negative);
    assert_eq!(rule.antecedent, vec![(0, 0)], "antecedent is gender = male");
    assert_eq!(rule.sa_value, BREAST_CANCER);
    assert_eq!(rule.confidence, 1.0);
    assert_eq!(rule.support, 6, "all six males lack breast cancer");
    let kb = KnowledgeBase::from_rules(top, data.schema()).unwrap();
    (kb, table)
}

#[test]
fn golden_conditionals_from_mined_rule() {
    let (kb, table) = mined_knowledge();
    let est = Engine::default().estimate(&table, &kb).unwrap();
    let q = |gender: u16, degree: u16| table.interner().lookup(&[gender, degree]).unwrap();
    let (q1, q2, q3) = (q(0, 0), q(1, 0), q(0, 1));
    let (q4, q5, q6) = (q(1, 2), q(1, 3), q(0, 3));

    // q1 (male, college — Allen, Brian, Ethan): buckets 1 and 2.
    // Bucket 1 independence over {q1: 2, q3: 1} × {flu: 2, pneumonia: 1}
    // gives q1 flu 4/3, pneumonia 2/3 (counts); bucket 2 over
    // {q1: 1, q3: 1} × {hiv: 1, pneumonia: 1} gives 1/2 each.
    let expect_q1 = [
        (FLU, 4.0 / 9.0),          // (4/3)/3
        (PNEUMONIA, 7.0 / 18.0),   // (2/3 + 1/2)/3
        (BREAST_CANCER, 0.0),
        (HIV, 1.0 / 6.0),          // (1/2)/3
        (LUNG_CANCER, 0.0),
    ];
    // q3 (male, high school — David, Frank): same buckets, half the q1 mass
    // in bucket 1.
    let expect_q3 = [
        (FLU, 1.0 / 3.0),          // (2/3)/2
        (PNEUMONIA, 5.0 / 12.0),   // (1/3 + 1/2)/2
        (BREAST_CANCER, 0.0),
        (HIV, 1.0 / 4.0),          // (1/2)/2
        (LUNG_CANCER, 0.0),
    ];
    // q2 (female, college — Cathy, Helen): all of bucket 1's breast cancer,
    // plus a uniform third of bucket 3.
    let expect_q2 = [
        (FLU, 1.0 / 6.0),
        (PNEUMONIA, 0.0),
        (BREAST_CANCER, 1.0 / 2.0),
        (HIV, 1.0 / 6.0),
        (LUNG_CANCER, 1.0 / 6.0),
    ];
    // q4 (female, junior — Grace): fully disclosed.
    let expect_q4 = [
        (FLU, 0.0),
        (PNEUMONIA, 0.0),
        (BREAST_CANCER, 1.0),
        (HIV, 0.0),
        (LUNG_CANCER, 0.0),
    ];
    // q5 and q6 (Iris, James): uniform over bucket 3's SA multiset.
    let expect_b3 = [
        (FLU, 1.0 / 3.0),
        (PNEUMONIA, 0.0),
        (BREAST_CANCER, 0.0),
        (HIV, 1.0 / 3.0),
        (LUNG_CANCER, 1.0 / 3.0),
    ];

    for (qi, expected, label) in [
        (q1, &expect_q1, "q1"),
        (q2, &expect_q2, "q2"),
        (q3, &expect_q3, "q3"),
        (q4, &expect_q4, "q4"),
        (q5, &expect_b3, "q5"),
        (q6, &expect_b3, "q6"),
    ] {
        for &(s, want) in expected.iter() {
            let got = est.conditional(qi, s);
            assert!(
                (got - want).abs() < TOL,
                "{label}: P(s{s} | q) = {got}, hand-computed {want}"
            );
        }
    }
}

#[test]
fn golden_per_individual_disclosure() {
    let (kb, table) = mined_knowledge();
    let est = IndividualEngine::new().estimate(&table, &kb).unwrap();
    let pseud = PseudonymTable::from_interner(table.interner());
    let q4 = table.interner().lookup(&[1, 2]).unwrap();

    // Without individual-specific knowledge, people sharing a QI tuple are
    // exchangeable: each person's posterior equals their tuple's
    // conditional (checked against the golden values via the other test).
    let base = Engine::default().estimate(&table, &kb).unwrap();
    for i in 0..pseud.total() {
        let q = pseud.owner(i);
        let posterior = est.person_posterior(i);
        let sum: f64 = posterior.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5, "person {i} posterior sums to {sum}");
        for (s, &p) in posterior.iter().enumerate() {
            let want = base.conditional(q, s as u16);
            assert!(
                (p - want).abs() < 1e-5,
                "person {i} (q{q}): posterior[{s}] = {p}, conditional {want}"
            );
        }
    }

    // Grace is the only (female, junior) record: the mined rule pins her
    // bucket's breast-cancer record on her — disclosure probability 1.
    let grace: Vec<_> = pseud.pseudonyms_of(q4).collect();
    assert_eq!(grace.len(), 1);
    let posterior = est.person_posterior(grace[0]);
    assert!(
        (posterior[BREAST_CANCER as usize] - 1.0).abs() < 1e-5,
        "Grace must be fully disclosed: {posterior:?}"
    );
    // And she is the *only* fully disclosed individual.
    let disclosed = (0..pseud.total())
        .filter(|&i| est.person_posterior(i).iter().any(|&p| p > 1.0 - 1e-5))
        .count();
    assert_eq!(disclosed, 1);
}
