//! Property-based tests of the paper's theorems on random instances.
//!
//! Strategy: generate a random small categorical dataset, bucketize it
//! randomly, and check
//!   * Theorem 1 (soundness) by enumerating bucket assignments,
//!   * Theorem 3 (conciseness) by rank computations,
//!   * Theorem 5 (consistency) by comparing the solver to the closed form,
//!   * feasibility + constraint satisfaction for knowledge that is *true*
//!     of the original data (Section 4.2).

use pm_anonymize::assignment::{enumerate_assignments, evaluate_expression};
use pm_anonymize::published::PublishedTable;
use pm_datagen::workload::{synthetic_dataset, WorkloadConfig};
use pm_linalg::CsrMatrix;
use pm_microdata::dataset::Dataset;
use pm_microdata::distribution::QiSaDistribution;
use pm_microdata::value::Value;
use privacy_maxent::constraint::ConstraintOrigin;
use privacy_maxent::engine::{Engine, EngineConfig};
use privacy_maxent::invariants::data_invariants;
use privacy_maxent::knowledge::{Knowledge, KnowledgeBase};
use privacy_maxent::metrics;
use privacy_maxent::terms::TermIndex;
use proptest::prelude::*;

/// A random instance: dataset + a random partition into buckets of 2–4.
fn instance_strategy() -> impl Strategy<Value = (Dataset, Vec<Vec<usize>>)> {
    (2usize..5, 2usize..5, 8usize..16, 0u64..5000).prop_map(
        |(qi_card, sa_card, records, seed)| {
            let data = synthetic_dataset(&WorkloadConfig {
                records,
                qi_arities: vec![qi_card, 2],
                sa_arity: sa_card,
                correlation: 0.5,
                seed,
            });
            // Deterministic "random" partition derived from the seed.
            let mut rows: Vec<usize> = (0..records).collect();
            // Fisher-Yates with an LCG.
            let mut state = seed.wrapping_mul(48271).wrapping_add(11);
            for i in (1..rows.len()).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                rows.swap(i, j);
            }
            let mut partition = Vec::new();
            let mut it = rows.into_iter().peekable();
            let mut size = 2 + (seed as usize % 3);
            while it.peek().is_some() {
                let bucket: Vec<usize> = it.by_ref().take(size).collect();
                partition.push(bucket);
                size = 2 + ((size + 1) % 3);
            }
            (data, partition)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 1: every generated QI-/SA-invariant holds under every
    /// assignment of its bucket.
    #[test]
    fn invariants_sound_on_random_instances((data, partition) in instance_strategy()) {
        let table = PublishedTable::from_partition(&data, &partition).unwrap();
        let index = TermIndex::build(&table);
        let inv = data_invariants(&table, &index, false);
        for b in 0..table.num_buckets() {
            let assignments = enumerate_assignments(table.bucket(b));
            for c in inv.iter().filter(|c| match c.origin {
                ConstraintOrigin::QiInvariant { b: cb, .. }
                | ConstraintOrigin::SaInvariant { b: cb, .. } => cb == b,
                _ => false,
            }) {
                let terms: Vec<((usize, Value), f64)> = c
                    .coeffs
                    .iter()
                    .map(|&(t, coef)| {
                        let term = index.term(t);
                        ((term.q, term.s), coef)
                    })
                    .collect();
                for a in &assignments {
                    let v = evaluate_expression(a, &terms, table.total_records());
                    prop_assert!((v - c.rhs).abs() < 1e-12);
                }
            }
        }
    }

    /// Theorem 3: per bucket, rank(full invariants) = g + h − 1 and the
    /// concise set is linearly independent.
    #[test]
    fn invariants_concise_on_random_instances((data, partition) in instance_strategy()) {
        let table = PublishedTable::from_partition(&data, &partition).unwrap();
        let index = TermIndex::build(&table);
        let full = data_invariants(&table, &index, false);
        for b in 0..table.num_buckets() {
            let range = index.bucket_range(b);
            let rows: Vec<Vec<(usize, f64)>> = full
                .iter()
                .filter(|c| match c.origin {
                    ConstraintOrigin::QiInvariant { b: cb, .. }
                    | ConstraintOrigin::SaInvariant { b: cb, .. } => cb == b,
                    _ => false,
                })
                .map(|c| c.coeffs.iter().map(|&(t, v)| (t - range.start, v)).collect())
                .collect();
            let m = CsrMatrix::from_rows(range.len(), &rows);
            prop_assert_eq!(m.rank(1e-9), rows.len() - 1);
        }
    }

    /// Theorem 5: the solver's no-knowledge answer equals the closed form.
    #[test]
    fn consistency_on_random_instances((data, partition) in instance_strategy()) {
        let table = PublishedTable::from_partition(&data, &partition).unwrap();
        let uniform = Engine::uniform_estimate(&table);
        let solved = Engine::new(EngineConfig::builder().decompose(false).build())
            .estimate(&table, &KnowledgeBase::new())
            .unwrap();
        for q in 0..uniform.distinct_qi() {
            for s in 0..uniform.sa_cardinality() as Value {
                prop_assert!(
                    (uniform.conditional(q, s) - solved.conditional(q, s)).abs() < 1e-5,
                    "q={} s={}: {} vs {}",
                    q, s, uniform.conditional(q, s), solved.conditional(q, s)
                );
            }
        }
    }

    /// True knowledge (read off the original data) is always feasible, the
    /// estimate satisfies it, conditionals remain distributions, and the
    /// KL accuracy essentially never increases versus the uniform baseline.
    ///
    /// Note the tolerance: for the *joint* distribution `P(Q,S,B)` the
    /// Pythagorean identity makes the KL to the truth exactly monotone
    /// under added true linear constraints, but the paper's metric is the
    /// weighted KL between *conditionals* `P(S|Q)` after marginalising the
    /// bucket index — a derived quantity for which strict monotonicity is
    /// not a theorem. Proptest finds rare tiny (~1e-2) violations on
    /// adversarial 11-record instances; realistic workloads (see the
    /// Figure 5/6 experiments and `test_adult_pipeline`) are monotone.
    #[test]
    fn true_knowledge_feasible_and_respected((data, partition) in instance_strategy()) {
        let table = PublishedTable::from_partition(&data, &partition).unwrap();
        let truth = QiSaDistribution::from_dataset(&data).unwrap();
        // Build knowledge: the true P(s | first QI attribute value).
        let mut kb = KnowledgeBase::new();
        let qi0_card = data.schema().attribute(0).domain().cardinality();
        let sa_attr = data.schema().sensitive().unwrap();
        for v in 0..qi0_card as Value {
            let denom = data.count_matching(&[0], &[v]);
            if denom == 0 {
                continue;
            }
            for s in 0..data.schema().sa_cardinality().unwrap() as Value {
                if let Some(p) = data
                    .conditional_sa_probability(&[0], &[v], s)
                    .unwrap()
                {
                    kb.push(Knowledge::Conditional {
                        antecedent: vec![(0, v)],
                        sa: s,
                        probability: p,
                    })
                    .unwrap();
                }
            }
        }
        let _ = sa_attr;
        let engine = Engine::new(
            EngineConfig::builder().max_iterations(5000).residual_limit(0.05).build(),
        );
        let est = engine.estimate(&table, &kb).unwrap();
        // Conditional rows are distributions over each symbol's support.
        for q in 0..est.distinct_qi() {
            let sum: f64 = est.conditional_row(q).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row {} sums to {}", q, sum);
        }
        // KL accuracy does not exceed the baseline's.
        let baseline = metrics::estimation_accuracy(&truth, &Engine::uniform_estimate(&table));
        let acc = metrics::estimation_accuracy(&truth, &est);
        prop_assert!(acc <= baseline + 0.05, "{} > {}", acc, baseline);
    }
}
