//! Crash-recovery truncation sweep.
//!
//! A crash can cut the WAL at *any* byte. This suite truncates a
//! multi-epoch WAL at **every** offset and demands that `recover` (a) never
//! panics, (b) lands exactly on the last fully-committed epoch for that
//! cut, (c) serves estimates bit-identical to a clean from-scratch build of
//! that epoch's table, and (d) leaves the WAL repaired so `open_append`
//! works and the next epoch continues the chain.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use pm_anonymize::fixtures::paper_example;
use privacy_maxent::compiled::CompiledTable;
use privacy_maxent::delta::TableDelta;
use privacy_maxent::engine::EngineConfig;
use privacy_maxent::persist::{recover, EpochWal, SNAPSHOT_FILE, WAL_FILE};

fn config() -> EngineConfig {
    EngineConfig::builder().threads(1).residual_limit(f64::INFINITY).build()
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("pmx-recovery-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Three deltas over the paper's Figure 1 table, each its own epoch.
fn epoch_deltas() -> [TableDelta; 3] {
    [
        TableDelta::new().insert(vec![0, 0], 0, 1),
        TableDelta::new().move_record(vec![0, 0], 0, 1, 2),
        TableDelta::new().retract(vec![0, 0], 0, 2),
    ]
}

#[test]
fn recovery_at_every_truncation_offset() {
    let (_, table) = paper_example();
    let e0 = CompiledTable::build(table, config()).expect("baseline solves");

    let dir = tmpdir("sweep");
    e0.save(dir.join(SNAPSHOT_FILE)).expect("save succeeds");
    let mut wal = EpochWal::create(&dir, e0.epoch()).expect("wal create");

    // Build the epoch chain, journaling each epoch and remembering (a) the
    // record boundary after it and (b) its expected estimate — computed
    // from a CLEAN from-scratch build of the materialized table, not from
    // the chain, so the sweep also re-proves chain == rebuild per epoch.
    let mut chain = vec![Arc::new(e0)];
    let mut boundaries = vec![fs::metadata(dir.join(WAL_FILE)).unwrap().len()];
    for delta in epoch_deltas() {
        let next = Arc::new(chain.last().unwrap().apply(&delta).expect("valid delta"));
        wal.append(next.epoch(), &delta, next.applied_delta().unwrap())
            .expect("append succeeds");
        boundaries.push(fs::metadata(dir.join(WAL_FILE)).unwrap().len());
        chain.push(next);
    }
    drop(wal);
    let expected: Vec<Vec<f64>> = chain
        .iter()
        .map(|artifact| {
            CompiledTable::build(artifact.table().clone(), config())
                .expect("rebuild solves")
                .baseline_estimate()
                .term_values()
                .to_vec()
        })
        .collect();
    let full = fs::read(dir.join(WAL_FILE)).expect("read wal");
    assert_eq!(boundaries.last().copied(), Some(full.len() as u64));

    for cut in 0..=full.len() {
        fs::write(dir.join(WAL_FILE), &full[..cut]).expect("truncate");
        let recovered = recover(&dir)
            .unwrap_or_else(|e| panic!("cut at byte {cut}: recover failed: {e}"));

        // The survivable epoch is the number of whole committed records
        // (header + record prefix) the cut preserves; a cut inside the
        // header falls all the way back to the snapshot.
        let epoch = boundaries.iter().skip(1).filter(|&&b| b <= cut as u64).count();
        assert_eq!(
            recovered.artifact.epoch(),
            epoch as u64,
            "cut at byte {cut}: wrong epoch"
        );
        assert_eq!(recovered.replayed, epoch, "cut at byte {cut}");
        assert_eq!(
            recovered.artifact.baseline_estimate().term_values(),
            expected[epoch].as_slice(),
            "cut at byte {cut}: estimate not bit-identical to the epoch-{epoch} rebuild"
        );

        // The WAL is repaired in place: appending works and continues the
        // chain from the recovered epoch.
        let mut wal = EpochWal::open_append(&dir)
            .unwrap_or_else(|e| panic!("cut at byte {cut}: repaired WAL won't open: {e}"));
        assert_eq!(wal.next_epoch(), epoch as u64 + 1, "cut at byte {cut}");
        if epoch < epoch_deltas().len() {
            let delta = &epoch_deltas()[epoch];
            let next = recovered.artifact.apply(delta).expect("valid delta");
            wal.append(next.epoch(), delta, next.applied_delta().unwrap())
                .unwrap_or_else(|e| panic!("cut at byte {cut}: append failed: {e}"));
            let again = recover(&dir).expect("recover after repair + append");
            assert_eq!(again.artifact.epoch(), epoch as u64 + 1);
            assert_eq!(
                again.artifact.baseline_estimate().term_values(),
                expected[epoch + 1].as_slice(),
                "cut at byte {cut}: post-repair append diverged"
            );
        }
    }
    fs::remove_dir_all(&dir).ok();
}

/// Garbage appended after the committed tail (a torn write that got padded,
/// not just cut) is truncated the same way, at every garbage length.
#[test]
fn recovery_with_torn_garbage_tails() {
    let (_, table) = paper_example();
    let e0 = CompiledTable::build(table, config()).expect("baseline solves");
    let dir = tmpdir("garbage");
    e0.save(dir.join(SNAPSHOT_FILE)).expect("save succeeds");
    let mut wal = EpochWal::create(&dir, e0.epoch()).expect("wal create");
    let delta = TableDelta::new().insert(vec![0, 0], 0, 1);
    let e1 = e0.apply(&delta).expect("valid delta");
    wal.append(1, &delta, e1.applied_delta().unwrap()).expect("append");
    drop(wal);
    let clean = fs::read(dir.join(WAL_FILE)).expect("read wal");

    for extra in 1..64usize {
        let mut torn = clean.clone();
        // 0xC3 never matches a record this short nor the commit marker.
        torn.extend(std::iter::repeat_n(0xC3, extra));
        fs::write(dir.join(WAL_FILE), &torn).expect("write");
        let recovered =
            recover(&dir).unwrap_or_else(|e| panic!("{extra} garbage bytes: {e}"));
        assert_eq!(recovered.artifact.epoch(), 1, "{extra} garbage bytes");
        assert_eq!(recovered.truncated_bytes, extra as u64, "{extra} garbage bytes");
        assert_eq!(
            fs::read(dir.join(WAL_FILE)).expect("read"),
            clean,
            "{extra} garbage bytes: WAL not repaired to the committed prefix"
        );
    }
    fs::remove_dir_all(&dir).ok();
}
