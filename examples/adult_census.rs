//! The paper's full evaluation pipeline on the synthetic Adult workload —
//! run as a **resident session**: the publication is fixed, the assumed
//! Top-(K+, K−) knowledge bound grows step by step, and each step only
//! feeds the *new* rules as deltas. `refresh` re-solves the components
//! those deltas touch and reuses everything else, which is the whole point
//! of serving privacy reports from a long-lived `Analyst` instead of
//! re-estimating from scratch per bound.
//!
//! This is a scaled-down interactive version of the Figure 5 experiment;
//! the complete sweep lives in `cargo run -p pm-bench --bin experiments`
//! and the delta-vs-from-scratch timing in `--bin incremental_bench`.
//!
//! Run with: `cargo run --release --example adult_census`

use pm_anonymize::anatomy::{AnatomyBucketizer, AnatomyConfig};
use pm_anonymize::ldiv;
use pm_assoc::miner::{MinerConfig, RuleMiner};
use pm_datagen::adult::{AdultGenerator, AdultGeneratorConfig};
use pm_microdata::distribution::QiSaDistribution;
use privacy_maxent::analyst::Analyst;
use privacy_maxent::engine::EngineConfig;
use privacy_maxent::metrics;

fn main() {
    // 1. The microdata: synthetic stand-in for UCI Adult (see DESIGN.md §2),
    //    scaled down so this example runs in seconds without --release too.
    let records = 5_000;
    let data = AdultGenerator::new(AdultGeneratorConfig { records, seed: 42 }).generate();
    let truth = QiSaDistribution::from_dataset(&data).unwrap();
    println!("generated {records} census records, 8 QI attributes, education as SA");

    // 2. Bucketize with Anatomy into buckets of 5 (paper: 14,210 → 2,842
    //    buckets), exempting the most frequent education level (footnote 3).
    let table = AnatomyBucketizer::new(AnatomyConfig { ell: 5, exempt_top: 1 })
        .publish(&data)
        .expect("bucketization succeeds");
    let exempt = ldiv::most_frequent_sa(&table, 1);
    assert!(ldiv::satisfies_relaxed_diversity(&table, 5, &exempt));
    println!(
        "published {} buckets of {} records; relaxed 5-diversity holds",
        table.num_buckets(),
        table.total_records() / table.num_buckets()
    );

    // 3. Mine association rules from the original data (Section 4.2: the
    //    original data itself is the best source of background knowledge).
    let rules = RuleMiner::new(MinerConfig { min_support: 3, arities: vec![1, 2, 3] })
        .mine(&data);
    println!(
        "mined {} positive and {} negative rules (min support 3)\n",
        rules.positive.len(),
        rules.negative.len()
    );
    let top = &rules.positive[0];
    println!(
        "strongest positive rule: {:?} => education={} (confidence {:.2}, support {})",
        top.antecedent, top.sa_value, top.confidence, top.support
    );

    // 4. Privacy vs. amount of background knowledge (Figure 5's shape),
    //    served incrementally: step K→K' adds only rules [K/2, K'/2) of
    //    each polarity and refreshes.
    let config = EngineConfig::builder().residual_limit(f64::INFINITY).build();
    let mut analyst = Analyst::new(table, config).expect("baseline solves");
    println!("\n    K   accuracy(KL)  max-disclosure  re-solved/components  refresh");
    let mut prev = 0usize;
    for k in [0usize, 50, 200, 1000, 5000] {
        let half = |n: usize| n / 2;
        let new_pos = &rules.positive[half(prev).min(rules.positive.len())
            ..half(k).min(rules.positive.len())];
        let new_neg = &rules.negative[half(prev).min(rules.negative.len())
            ..half(k).min(rules.negative.len())];
        analyst
            .add_rules(new_pos.iter().chain(new_neg), data.schema())
            .expect("mined rules are valid knowledge");
        let stats = analyst.refresh().expect("mined knowledge is feasible");
        let acc = metrics::estimation_accuracy(&truth, analyst.estimate());
        println!(
            "  {k:5}   {acc:10.4}   {:12.3}   {:9}/{:<10}  {:?}",
            analyst.report().max_disclosure,
            stats.resolved + stats.closed_form,
            stats.components,
            stats.wall
        );
        prev = k;
    }
    println!(
        "\nReading: accuracy (weighted KL between the adversary's estimate \
         and the truth)\nfalls as K grows — more background knowledge, less \
         privacy. Each step re-solved\nonly the components the new rules \
         touched; the publication's privacy report is\nthe tuple (knowledge \
         bound, privacy score)."
    );
}
