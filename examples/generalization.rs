//! Privacy-MaxEnt over *generalization* (the paper's first future-work
//! direction): Mondrian k-anonymous equivalence classes are buckets, so the
//! unchanged engine quantifies generalized publications too — and shows how
//! background knowledge erodes them compared to Anatomy.
//!
//! Run with: `cargo run --release --example generalization`

use pm_anonymize::anatomy::{AnatomyBucketizer, AnatomyConfig};
use pm_anonymize::mondrian::{Mondrian, MondrianConfig};
use pm_assoc::miner::{MinerConfig, RuleMiner};
use pm_datagen::medical::{MedicalGenerator, MedicalGeneratorConfig};
use pm_microdata::distribution::QiSaDistribution;
use privacy_maxent::engine::{Engine, EngineConfig};
use privacy_maxent::knowledge::KnowledgeBase;
use privacy_maxent::metrics;

fn main() {
    let data = MedicalGenerator::new(MedicalGeneratorConfig { records: 3000, seed: 17 })
        .generate();
    let truth = QiSaDistribution::from_dataset(&data).unwrap();
    let rules = RuleMiner::new(MinerConfig { min_support: 3, arities: vec![1, 2] })
        .mine(&data);
    println!(
        "3,000 hospital records; {} positive / {} negative rules mined\n",
        rules.positive.len(),
        rules.negative.len()
    );

    let anatomy = AnatomyBucketizer::new(AnatomyConfig { ell: 5, exempt_top: 2 })
        .publish(&data)
        .expect("anatomy succeeds");
    let mondrian = Mondrian::new(MondrianConfig { k: 5 })
        .publish(&data)
        .expect("mondrian succeeds");
    println!(
        "anatomy: {} buckets of 5 | mondrian: {} equivalence classes (k = 5)\n",
        anatomy.num_buckets(),
        mondrian.num_buckets()
    );

    println!(
        "{:>6}  {:>22}  {:>22}",
        "K", "anatomy (KL / discl.)", "mondrian (KL / discl.)"
    );
    let config = EngineConfig { residual_limit: f64::INFINITY, ..Default::default() };
    for k in [0usize, 50, 500, 2000] {
        let picked = rules.top_k(k / 2, k - k / 2);
        let kb = KnowledgeBase::from_rules(picked.iter().copied(), data.schema()).unwrap();
        let engine = Engine::new(config.clone());
        let ea = engine.estimate(&anatomy, &kb).expect("feasible");
        let em = engine.estimate(&mondrian, &kb).expect("feasible");
        println!(
            "{k:>6}  {:>12.4} / {:>6.3}  {:>12.4} / {:>6.3}",
            metrics::estimation_accuracy(&truth, &ea),
            metrics::max_disclosure(&ea),
            metrics::estimation_accuracy(&truth, &em),
            metrics::max_disclosure(&em),
        );
    }
    println!(
        "\nThe same maxent machinery quantifies both mechanisms; the report \
         tells the\npublisher which disguising method stands up better to the \
         assumed knowledge bound."
    );
}
