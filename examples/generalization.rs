//! Privacy-MaxEnt over *generalization* (the paper's first future-work
//! direction): Mondrian k-anonymous equivalence classes are buckets, so the
//! unchanged engine quantifies generalized publications too — and shows how
//! background knowledge erodes them compared to Anatomy. Both publications
//! are served by resident `Analyst` sessions fed the same growing rule set
//! as deltas.
//!
//! Run with: `cargo run --release --example generalization`

use pm_anonymize::anatomy::{AnatomyBucketizer, AnatomyConfig};
use pm_anonymize::mondrian::{Mondrian, MondrianConfig};
use pm_assoc::miner::{MinerConfig, RuleMiner};
use pm_datagen::medical::{MedicalGenerator, MedicalGeneratorConfig};
use pm_microdata::distribution::QiSaDistribution;
use privacy_maxent::analyst::Analyst;
use privacy_maxent::engine::EngineConfig;
use privacy_maxent::metrics;

fn main() {
    let data = MedicalGenerator::new(MedicalGeneratorConfig { records: 3000, seed: 17 })
        .generate();
    let truth = QiSaDistribution::from_dataset(&data).unwrap();
    let rules = RuleMiner::new(MinerConfig { min_support: 3, arities: vec![1, 2] })
        .mine(&data);
    println!(
        "3,000 hospital records; {} positive / {} negative rules mined\n",
        rules.positive.len(),
        rules.negative.len()
    );

    let anatomy = AnatomyBucketizer::new(AnatomyConfig { ell: 5, exempt_top: 2 })
        .publish(&data)
        .expect("anatomy succeeds");
    let mondrian = Mondrian::new(MondrianConfig { k: 5 })
        .publish(&data)
        .expect("mondrian succeeds");
    println!(
        "anatomy: {} buckets of 5 | mondrian: {} equivalence classes (k = 5)\n",
        anatomy.num_buckets(),
        mondrian.num_buckets()
    );

    let config = EngineConfig::builder().residual_limit(f64::INFINITY).build();
    let mut sessions = [
        Analyst::new(anatomy, config.clone()).expect("anatomy baseline solves"),
        Analyst::new(mondrian, config).expect("mondrian baseline solves"),
    ];

    println!(
        "{:>6}  {:>22}  {:>22}",
        "K", "anatomy (KL / discl.)", "mondrian (KL / discl.)"
    );
    let mut prev = (0usize, 0usize);
    for k in [0usize, 50, 500, 2000] {
        let (kp, kn) = (k / 2, k - k / 2);
        let new_pos = &rules.positive[prev.0.min(rules.positive.len())..kp.min(rules.positive.len())];
        let new_neg = &rules.negative[prev.1.min(rules.negative.len())..kn.min(rules.negative.len())];
        let mut scores = Vec::new();
        for analyst in &mut sessions {
            analyst
                .add_rules(new_pos.iter().chain(new_neg), data.schema())
                .expect("mined rules are valid knowledge");
            analyst.refresh().expect("feasible");
            scores.push((
                metrics::estimation_accuracy(&truth, analyst.estimate()),
                analyst.report().max_disclosure,
            ));
        }
        println!(
            "{k:>6}  {:>12.4} / {:>6.3}  {:>12.4} / {:>6.3}",
            scores[0].0, scores[0].1, scores[1].0, scores[1].1,
        );
        prev = (kp, kn);
    }
    println!(
        "\nThe same maxent machinery quantifies both mechanisms; the report \
         tells the\npublisher which disguising method stands up better to the \
         assumed knowledge bound."
    );
}
