//! Quickstart: the paper's running example (Figure 1) on the resident
//! `Analyst` session — open once, evolve the adversary model as deltas.
//!
//! Run with: `cargo run --example quickstart`

use pm_anonymize::fixtures::paper_example;
use pm_microdata::distribution::QiSaDistribution;
use privacy_maxent::analyst::Analyst;
use privacy_maxent::engine::EngineConfig;
use privacy_maxent::knowledge::Knowledge;
use privacy_maxent::metrics;

fn main() {
    // The original microdata D (10 patients) and its bucketized
    // publication D' (3 buckets) from Figure 1 of the paper.
    let (data, table) = paper_example();
    let truth = QiSaDistribution::from_dataset(&data).expect("schema has an SA");
    let diseases = ["flu", "pneumonia", "breast cancer", "hiv", "lung cancer"];

    // --- Step 1: open the session. Invariants compile and the
    //     knowledge-free baseline (what prior work assumes) solves once.
    let mut analyst =
        Analyst::new(table, EngineConfig::default()).expect("baseline solve succeeds");
    println!("Without background knowledge (uniform within buckets):");
    print_conditional(&analyst, &diseases);
    println!(
        "  estimation accuracy (weighted KL, lower = worse privacy): {:.4}",
        metrics::estimation_accuracy(&truth, analyst.estimate())
    );
    println!("  max disclosure: {:.3}\n", analyst.report().max_disclosure);

    // --- Step 2: the adversary learns the paper's motivating medical fact:
    //     "it is rare for male to have breast cancer" ⇒ P(bc | male) = 0.
    //     The delta dirties only the components its buckets touch.
    let handle = analyst
        .add_knowledge(Knowledge::Conditional {
            antecedent: vec![(0, 0)], // QI position 0 (gender) = male (code 0)
            sa: 2,                    // breast cancer
            probability: 0.0,
        })
        .expect("valid knowledge");
    let stats = analyst.refresh().expect("knowledge consistent with the data");
    println!("With P(breast cancer | male) = 0:");
    print_conditional(&analyst, &diseases);
    println!(
        "  refresh re-solved {} of {} component(s), reused {} ({} closed-form)",
        stats.resolved, stats.components, stats.reused, stats.closed_form
    );
    println!(
        "  estimation accuracy: {:.4}  (dropped — privacy got worse)",
        metrics::estimation_accuracy(&truth, analyst.estimate())
    );
    println!("  max disclosure: {:.3}", analyst.report().max_disclosure);

    // The paper's observation: the only females in buckets 1 and 2 are now
    // fully linked to breast cancer.
    let table = analyst.table();
    let q2 = table.interner().lookup(&[1, 0]).expect("female-college exists");
    let q4 = table.interner().lookup(&[1, 2]).expect("female-junior exists");
    println!(
        "\n  Cathy's tuple (female, college): P(breast cancer) in bucket 1 \
         rose to {:.3}",
        analyst.estimate().p_qsb(q2, 2, 0) / table.p_qi_bucket(q2, 0)
    );
    println!(
        "  Grace (female, junior, the only female in bucket 2): \
         P(breast cancer) = {:.3} — fully disclosed",
        analyst.conditional(q4, 2)
    );

    // --- Step 3: retract the rule. The session restores the baseline
    //     bit-for-bit by re-solving only what the removal invalidated.
    analyst.remove_knowledge(handle).expect("handle is live");
    let stats = analyst.refresh().expect("baseline is always feasible");
    println!(
        "\nAfter retracting the rule (re-solved {}, reused {}): max disclosure {:.3}",
        stats.resolved + stats.closed_form,
        stats.reused,
        analyst.report().max_disclosure
    );
}

fn print_conditional(analyst: &Analyst, diseases: &[&str]) {
    for (q, tuple, _) in analyst.table().interner().iter() {
        let gender = if tuple[0] == 0 { "male" } else { "female" };
        let degree = ["college", "high school", "junior", "graduate"][tuple[1] as usize];
        let row: Vec<String> = analyst
            .estimate()
            .conditional_row(q)
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 1e-9)
            .map(|(s, &p)| format!("{}={:.2}", diseases[s], p))
            .collect();
        println!("  q{} ({gender}, {degree}): {}", q + 1, row.join("  "));
    }
}
