//! Quickstart: the paper's running example (Figure 1) in ~40 lines of API.
//!
//! Run with: `cargo run --example quickstart`

use pm_anonymize::fixtures::paper_example;
use pm_microdata::distribution::QiSaDistribution;
use privacy_maxent::engine::Engine;
use privacy_maxent::knowledge::{Knowledge, KnowledgeBase};
use privacy_maxent::metrics;

fn main() {
    // The original microdata D (10 patients) and its bucketized
    // publication D' (3 buckets) from Figure 1 of the paper.
    let (data, table) = paper_example();
    let truth = QiSaDistribution::from_dataset(&data).expect("schema has an SA");
    let diseases = ["flu", "pneumonia", "breast cancer", "hiv", "lung cancer"];

    // --- Step 1: what prior work assumes — no background knowledge. ---
    let baseline = Engine::uniform_estimate(&table);
    println!("Without background knowledge (uniform within buckets):");
    print_conditional(&table, &baseline, &diseases);
    println!(
        "  estimation accuracy (weighted KL, lower = worse privacy): {:.4}",
        metrics::estimation_accuracy(&truth, &baseline)
    );
    println!(
        "  max disclosure: {:.3}\n",
        metrics::max_disclosure(&baseline)
    );

    // --- Step 2: add the paper's motivating medical knowledge:
    //     "it is rare for male to have breast cancer" ⇒ P(bc | male) = 0.
    let mut kb = KnowledgeBase::new();
    kb.push(Knowledge::Conditional {
        antecedent: vec![(0, 0)], // QI position 0 (gender) = male (code 0)
        sa: 2,                    // breast cancer
        probability: 0.0,
    })
    .expect("valid knowledge");

    let est = Engine::default()
        .estimate(&table, &kb)
        .expect("knowledge consistent with the data");
    println!("With P(breast cancer | male) = 0:");
    print_conditional(&table, &est, &diseases);
    println!(
        "  estimation accuracy: {:.4}  (dropped — privacy got worse)",
        metrics::estimation_accuracy(&truth, &est)
    );
    println!("  max disclosure: {:.3}", metrics::max_disclosure(&est));

    // The paper's observation: the only females in buckets 1 and 2 are now
    // fully linked to breast cancer.
    let q2 = table.interner().lookup(&[1, 0]).expect("female-college exists");
    let q4 = table.interner().lookup(&[1, 2]).expect("female-junior exists");
    println!(
        "\n  Cathy's tuple (female, college): P(breast cancer) in bucket 1 \
         rose to {:.3}",
        est.p_qsb(q2, 2, 0) / table.p_qi_bucket(q2, 0)
    );
    println!(
        "  Grace (female, junior, the only female in bucket 2): \
         P(breast cancer) = {:.3} — fully disclosed",
        est.conditional(q4, 2)
    );
}

fn print_conditional(
    table: &pm_anonymize::published::PublishedTable,
    est: &privacy_maxent::engine::Estimate,
    diseases: &[&str],
) {
    for (q, tuple, _) in table.interner().iter() {
        let gender = if tuple[0] == 0 { "male" } else { "female" };
        let degree = ["college", "high school", "junior", "graduate"][tuple[1] as usize];
        let row: Vec<String> = est
            .conditional_row(q)
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 1e-9)
            .map(|(s, &p)| format!("{}={:.2}", diseases[s], p))
            .collect();
        println!("  q{} ({gender}, {degree}): {}", q + 1, row.join("  "));
    }
}
