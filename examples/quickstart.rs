//! Quickstart: the paper's running example (Figure 1), compile-once /
//! serve-many style — the publication compiles into one shared
//! `CompiledTable` artifact, sessions open over it in O(1), and what-if
//! adversary models run on cheap forks.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use pm_anonymize::fixtures::paper_example;
use pm_microdata::distribution::QiSaDistribution;
use privacy_maxent::analyst::Analyst;
use privacy_maxent::compiled::CompiledTable;
use privacy_maxent::engine::EngineConfig;
use privacy_maxent::knowledge::Knowledge;
use privacy_maxent::metrics;

fn main() {
    // The original microdata D (10 patients) and its bucketized
    // publication D' (3 buckets) from Figure 1 of the paper.
    let (data, table) = paper_example();
    let truth = QiSaDistribution::from_dataset(&data).expect("schema has an SA");
    let diseases = ["flu", "pneumonia", "breast cancer", "hiv", "lung cancer"];

    // --- Step 1: compile the artifact. Everything knowledge-independent —
    //     term index, D'-invariants, QI->bucket index, the knowledge-free
    //     Theorem 5 baseline — happens exactly once, here.
    let artifact = Arc::new(
        CompiledTable::build(table, EngineConfig::default()).expect("baseline solves"),
    );
    println!("{}\n", artifact.stats());

    // --- Step 2: open a session. O(1) — any number of analysts (across
    //     threads) share the artifact; each holds only its own adversary
    //     model as a copy-on-write overlay on the baseline.
    let mut analyst = Analyst::open(Arc::clone(&artifact));
    println!("Without background knowledge (uniform within buckets):");
    print_conditional(&analyst, &diseases);
    println!(
        "  estimation accuracy (weighted KL, lower = worse privacy): {:.4}",
        metrics::estimation_accuracy(&truth, analyst.estimate())
    );
    println!("  max disclosure: {:.3}\n", analyst.report().max_disclosure);

    // --- Step 3: the adversary learns the paper's motivating medical fact:
    //     "it is rare for male to have breast cancer" => P(bc | male) = 0.
    //     The delta dirties only the components its buckets touch.
    let handle = analyst
        .add_knowledge(Knowledge::Conditional {
            antecedent: vec![(0, 0)], // QI position 0 (gender) = male (code 0)
            sa: 2,                    // breast cancer
            probability: 0.0,
        })
        .expect("valid knowledge");
    let stats = analyst.refresh().expect("knowledge consistent with the data");
    println!("With P(breast cancer | male) = 0:");
    print_conditional(&analyst, &diseases);
    println!(
        "  refresh re-solved {} of {} component(s), reused {} ({} closed-form)",
        stats.resolved, stats.components, stats.reused, stats.closed_form
    );
    println!(
        "  estimation accuracy: {:.4}  (dropped — privacy got worse)",
        metrics::estimation_accuracy(&truth, analyst.estimate())
    );
    println!("  max disclosure: {:.3}", analyst.report().max_disclosure);

    // The paper's observation: the only females in buckets 1 and 2 are now
    // fully linked to breast cancer.
    let table = analyst.table();
    let q2 = table.interner().lookup(&[1, 0]).expect("female-college exists");
    let q4 = table.interner().lookup(&[1, 2]).expect("female-junior exists");
    println!(
        "\n  Cathy's tuple (female, college): P(breast cancer) in bucket 1 \
         rose to {:.3}",
        analyst.estimate().p_qsb(q2, 2, 0) / table.p_qi_bucket(q2, 0)
    );
    println!(
        "  Grace (female, junior, the only female in bucket 2): \
         P(breast cancer) = {:.3} — fully disclosed",
        analyst.conditional(q4, 2)
    );

    // --- Step 4: a what-if fork. "What if this adversary *also* knew
    //     P(hiv | college) = 0.4?" The fork shares the artifact and the
    //     current overlay; the original session is untouched.
    let mut what_if = analyst.fork();
    let _ = what_if
        .add_knowledge(Knowledge::Conditional {
            antecedent: vec![(1, 0)], // degree = college
            sa: 3,                    // hiv
            probability: 0.4,
        })
        .expect("valid knowledge");
    what_if.refresh().expect("consistent");
    println!(
        "\nWhat-if fork (+ P(hiv | college) = 0.4): max disclosure {:.3} \
         — parent session still at {:.3}",
        what_if.report().max_disclosure,
        analyst.report().max_disclosure
    );

    // Snapshots are cheap Arc clones: readers keep a consistent estimate
    // while the session refreshes underneath.
    let snapshot = analyst.snapshot();

    // --- Step 5: retract the rule. The session restores the baseline
    //     bit-for-bit by re-solving only what the removal invalidated.
    analyst.remove_knowledge(handle).expect("handle is live");
    let stats = analyst.refresh().expect("baseline is always feasible");
    println!(
        "\nAfter retracting the rule (re-solved {}, reused {}): max disclosure {:.3}",
        stats.resolved + stats.closed_form,
        stats.reused,
        analyst.report().max_disclosure
    );
    assert!((snapshot.conditional(q4, 2) - 1.0).abs() < 1e-6, "snapshot kept the old view");
}

fn print_conditional(analyst: &Analyst, diseases: &[&str]) {
    for (q, tuple, _) in analyst.table().interner().iter() {
        let gender = if tuple[0] == 0 { "male" } else { "female" };
        let degree = ["college", "high school", "junior", "graduate"][tuple[1] as usize];
        let row: Vec<String> = analyst
            .estimate()
            .conditional_row(q)
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 1e-9)
            .map(|(s, &p)| format!("{}={:.2}", diseases[s], p))
            .collect();
        println!("  q{} ({gender}, {degree}): {}", q + 1, row.join("  "));
    }
}
