//! The linking-attack scenario from the paper's introduction, plus the
//! Section 3.1 inference chain, shown end to end.
//!
//! An adversary holds the published (bucketized) medical table and two
//! pieces of common knowledge. Privacy-MaxEnt quantifies exactly how much
//! those leak: deterministic re-identification of several patients.
//!
//! Run with: `cargo run --example breast_cancer`

use pm_anonymize::fixtures::paper_example;
use privacy_maxent::engine::Engine;
use privacy_maxent::knowledge::{Knowledge, KnowledgeBase};
use privacy_maxent::metrics;

fn main() {
    let (_, table) = paper_example();
    let diseases = ["flu", "pneumonia", "breast cancer", "hiv", "lung cancer"];

    // Section 3.1: the adversary knows
    //   P(s1 | q2) = 0   — female-college patients don't have breast cancer
    //   P(s1 or s2 | q3) = 0 — male-high-school patients have neither
    //                          breast cancer nor flu
    // (s1 = breast cancer, s2 = flu in the paper's symbol order).
    let mut kb = KnowledgeBase::new();
    kb.push(Knowledge::Conditional {
        antecedent: vec![(0, 1), (1, 0)], // female, college
        sa: 2,                            // breast cancer
        probability: 0.0,
    })
    .unwrap();
    // "P(s1 or s2 | q3) = 0" splits into two zero conditionals.
    for sa in [2u16, 0u16] {
        kb.push(Knowledge::Conditional {
            antecedent: vec![(0, 0), (1, 1)], // male, high school
            sa,
            probability: 0.0,
        })
        .unwrap();
    }

    let est = Engine::default().estimate(&table, &kb).unwrap();

    println!("Adversary's posterior P(disease | QI) after the two rules:\n");
    for (q, tuple, _) in table.interner().iter() {
        let gender = if tuple[0] == 0 { "male" } else { "female" };
        let degree = ["college", "high school", "junior", "graduate"][tuple[1] as usize];
        println!("  q{} ({gender:6} {degree:11}):", q + 1);
        for (s, &p) in est.conditional_row(q).iter().enumerate() {
            if p > 1e-9 {
                println!("      {:13} {:.3}", diseases[s], p);
            }
        }
    }

    // The paper's conclusion for bucket 1: q3 → pneumonia with certainty;
    // q2 → flu with certainty; the q1 pair splits over {bc, flu}.
    let q2 = table.interner().lookup(&[1, 0]).unwrap();
    let q3 = table.interner().lookup(&[0, 1]).unwrap();
    println!("\nDeterministic conclusions the engine recovered (Section 3.1):");
    println!(
        "  David (q3) has pneumonia in bucket 1: P = {:.3}",
        est.p_qsb(q3, 1, 0) / table.p_qi_bucket(q3, 0)
    );
    println!(
        "  Cathy (q2) has flu in bucket 1:      P = {:.3}",
        est.p_qsb(q2, 0, 0) / table.p_qi_bucket(q2, 0)
    );

    println!(
        "\nPrivacy scores: max disclosure {:.3}, effective l-diversity {:.2}, \
         min conditional entropy {:.3} nats",
        metrics::max_disclosure(&est),
        metrics::effective_l_diversity(&est),
        metrics::min_conditional_entropy(&est),
    );
    if let Some((q, s, p)) = metrics::most_exposed(&est) {
        println!(
            "Most exposed tuple: q{} → {} with confidence {:.3}",
            q + 1,
            diseases[s as usize],
            p
        );
    }
}
