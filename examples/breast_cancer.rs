//! The linking-attack scenario from the paper's introduction, plus the
//! Section 3.1 inference chain — run as an evolving session: the adversary
//! learns one fact at a time, and each `refresh` re-solves only the
//! components the new fact invalidated.
//!
//! Run with: `cargo run --example breast_cancer`

use pm_anonymize::fixtures::paper_example;
use privacy_maxent::analyst::Analyst;
use privacy_maxent::engine::EngineConfig;
use privacy_maxent::knowledge::Knowledge;
use privacy_maxent::metrics;

fn main() {
    let (_, table) = paper_example();
    let diseases = ["flu", "pneumonia", "breast cancer", "hiv", "lung cancer"];
    let mut analyst =
        Analyst::new(table, EngineConfig::default()).expect("baseline solves");

    // Section 3.1: the adversary accumulates
    //   P(s1 | q2) = 0   — female-college patients don't have breast cancer
    //   P(s1 or s2 | q3) = 0 — male-high-school patients have neither
    //                          breast cancer nor flu
    // (s1 = breast cancer, s2 = flu in the paper's symbol order; the
    // disjunction splits into two zero conditionals).
    let facts = [
        ("P(breast cancer | female, college) = 0", vec![(0usize, 1u16), (1, 0)], 2u16),
        ("P(breast cancer | male, high school) = 0", vec![(0, 0), (1, 1)], 2),
        ("P(flu | male, high school) = 0", vec![(0, 0), (1, 1)], 0),
    ];
    println!("Adversary model evolving one fact at a time:\n");
    for (label, antecedent, sa) in facts {
        let _ = analyst
            .add_knowledge(Knowledge::Conditional { antecedent, sa, probability: 0.0 })
            .expect("valid knowledge");
        let stats = analyst.refresh().expect("consistent with the data");
        println!(
            "  + {label}\n      -> re-solved {} of {} component(s), max disclosure now {:.3}",
            stats.resolved + stats.closed_form,
            stats.components,
            analyst.report().max_disclosure
        );
    }

    println!("\nAdversary's posterior P(disease | QI) after the facts:\n");
    for (q, tuple, _) in analyst.table().interner().iter() {
        let gender = if tuple[0] == 0 { "male" } else { "female" };
        let degree = ["college", "high school", "junior", "graduate"][tuple[1] as usize];
        println!("  q{} ({gender:6} {degree:11}):", q + 1);
        for (s, &p) in analyst.estimate().conditional_row(q).iter().enumerate() {
            if p > 1e-9 {
                println!("      {:13} {:.3}", diseases[s], p);
            }
        }
    }

    // The paper's conclusion for bucket 1: q3 → pneumonia with certainty;
    // q2 → flu with certainty; the q1 pair splits over {bc, flu}.
    let table = analyst.table();
    let q2 = table.interner().lookup(&[1, 0]).unwrap();
    let q3 = table.interner().lookup(&[0, 1]).unwrap();
    println!("\nDeterministic conclusions the engine recovered (Section 3.1):");
    println!(
        "  David (q3) has pneumonia in bucket 1: P = {:.3}",
        analyst.estimate().p_qsb(q3, 1, 0) / table.p_qi_bucket(q3, 0)
    );
    println!(
        "  Cathy (q2) has flu in bucket 1:      P = {:.3}",
        analyst.estimate().p_qsb(q2, 0, 0) / table.p_qi_bucket(q2, 0)
    );

    let est = analyst.estimate();
    println!(
        "\nPrivacy scores: max disclosure {:.3}, effective l-diversity {:.2}, \
         min conditional entropy {:.3} nats",
        metrics::max_disclosure(est),
        metrics::effective_l_diversity(est),
        metrics::min_conditional_entropy(est),
    );
    if let Some((q, s, p)) = metrics::most_exposed(est) {
        println!(
            "Most exposed tuple: q{} → {} with confidence {:.3}",
            q + 1,
            diseases[s as usize],
            p
        );
    }
}
