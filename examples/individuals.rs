//! Knowledge about individuals (Section 6): pseudonyms and the three
//! constraint families, on the paper's own examples — each scenario runs on
//! its own **fork** of one base session over a shared `CompiledTable`
//! artifact, so the component layer compiles and solves exactly once while
//! the what-if individual layers evolve independently.
//!
//! Run with: `cargo run --example individuals`

use std::sync::Arc;

use pm_anonymize::fixtures::paper_example;
use pm_anonymize::pseudonym::PseudonymTable;
use privacy_maxent::analyst::Analyst;
use privacy_maxent::compiled::CompiledTable;
use privacy_maxent::engine::EngineConfig;
use privacy_maxent::knowledge::Knowledge;

fn main() {
    let (_, table) = paper_example();
    let diseases = ["flu", "pneumonia", "breast cancer", "hiv", "lung cancer"];
    let pseud = PseudonymTable::from_interner(table.interner());

    // Figure 4's pseudonym layout: q1 = {male, college} has three records,
    // so Alice-with-q1 could be any of {i1, i2, i3}.
    let q1 = table.interner().lookup(&[0, 0]).unwrap();
    println!(
        "q1 = (male, college) carries pseudonyms {:?} — the adversary cannot \
         tell which record is which person\n",
        pseud.pseudonyms_of(q1).map(|i| pseud.name(i)).collect::<Vec<_>>()
    );

    // Compile once; every scenario below forks the same base session.
    let artifact = Arc::new(
        CompiledTable::build(table, EngineConfig::default()).expect("baseline solves"),
    );
    let base = Analyst::open(Arc::clone(&artifact));

    // (1) "The probability that Alice (q1) has breast cancer is 0.2".
    let mut what_if = base.fork();
    what_if
        .set_individuals(vec![Knowledge::IndividualSa { pseudonym: 0, sa: 2, probability: 0.2 }])
        .unwrap();
    let stats = what_if.refresh().unwrap();
    assert!(stats.individual_resolve, "individual layer re-solved");
    println!("(1) P(Alice has breast cancer) = 0.2:");
    print_posterior("Alice (i1)", &what_if.person_posterior(0).unwrap(), &diseases);
    print_posterior("same-QI peer (i2)", &what_if.person_posterior(1).unwrap(), &diseases);

    // (2) "Alice has either breast cancer or HIV" — an independent fork of
    // the same base; scenario (1) is untouched and the shared component
    // layer is reused clean (no component re-solves at all).
    let mut what_if = base.fork();
    what_if
        .set_individuals(vec![Knowledge::IndividualOneOf { pseudonym: 0, sas: vec![2, 3] }])
        .unwrap();
    let stats = what_if.refresh().unwrap();
    assert_eq!(stats.resolved, 0, "no component re-solves for an individual swap");
    println!("\n(2) Alice has either breast cancer or HIV:");
    print_posterior("Alice (i1)", &what_if.person_posterior(0).unwrap(), &diseases);

    // (3) "Two people among Alice (q1), Bob (q2), Charlie (q5) have HIV" —
    // the paper's exact multi-person example, again on a fresh fork.
    let q2 = base.table().interner().lookup(&[1, 0]).unwrap();
    let q5 = base.table().interner().lookup(&[1, 3]).unwrap();
    let i4 = pseud.pseudonyms_of(q2).start;
    let i9 = pseud.pseudonyms_of(q5).start;
    let mut what_if = base.fork();
    what_if
        .set_individuals(vec![Knowledge::GroupCount {
            pseudonyms: vec![0, i4, i9],
            sa: 3,
            count: 2,
        }])
        .unwrap();
    what_if.refresh().unwrap();
    println!("\n(3) Exactly two of {{Alice, Bob, Charlie}} have HIV:");
    print_posterior("Alice (i1)", &what_if.person_posterior(0).unwrap(), &diseases);
    print_posterior(
        &format!("Bob ({})", pseud.name(i4)),
        &what_if.person_posterior(i4).unwrap(),
        &diseases,
    );
    print_posterior(
        &format!("Charlie ({})", pseud.name(i9)),
        &what_if.person_posterior(i9).unwrap(),
        &diseases,
    );
    let total: f64 = [0, i4, i9]
        .iter()
        .map(|&i| what_if.person_posterior(i).unwrap()[3])
        .sum();
    println!("    expected HIV count across the trio: {total:.3} (constraint: 2)");

    // The base session never saw any of it.
    assert!(base.person_posterior(0).is_none());
    assert_eq!(base.knowledge_len(), 0);
}

fn print_posterior(name: &str, posterior: &[f64], diseases: &[&str]) {
    let row: Vec<String> = posterior
        .iter()
        .enumerate()
        .filter(|(_, &p)| p > 1e-6)
        .map(|(s, &p)| format!("{}={:.3}", diseases[s], p))
        .collect();
    println!("    {name:18} {}", row.join("  "));
}
